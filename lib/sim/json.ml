type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Deterministic float image: integral values print without a fractional
   part, everything else through %.12g (stable for a given value, compact,
   and precise enough for rates and means). Non-finite values have no JSON
   spelling; they degrade to 0. *)
let float_repr f =
  if not (Float.is_finite f) then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          add_escaped buf k;
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  to_buffer buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ---------- Parser ---------- *)

exception Fail of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let peek_is c = !pos < n && Char.equal s.[!pos] c in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let utf8_of_code buf u =
    (* Minimal UTF-8 encoder for \uXXXX escapes. *)
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
            (if !pos >= n then fail "unterminated escape"
             else begin
               let e = s.[!pos] in
               advance ();
               match e with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 > n then fail "short \\u escape"
                   else begin
                     let hex = String.sub s !pos 4 in
                     pos := !pos + 4;
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some u -> utf8_of_code buf u
                     | None -> fail "bad \\u escape"
                   end
               | _ -> fail "bad escape"
             end);
            loop ()
        | c -> Buffer.add_char buf c; loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek_is '-' then advance ();
    let digits () =
      let saw = ref false in
      let rec d () =
        match peek () with
        | Some ('0' .. '9') ->
            saw := true;
            advance ();
            d ()
        | _ -> ()
      in
      d ();
      if not !saw then fail "expected digit"
    in
    digits ();
    if peek_is '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek_is '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek_is ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (msg, at) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
