module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let incr t = t.n <- t.n + 1
  let add t k = t.n <- t.n + k
  let value t = t.n
  let reset t = t.n <- 0
end

module Meter = struct
  type t = { mutable events : int; mutable bytes : int }

  let create () = { events = 0; bytes = 0 }

  let mark t ~bytes =
    t.events <- t.events + 1;
    t.bytes <- t.bytes + bytes

  let events t = t.events
  let bytes t = t.bytes

  let rate_events_per_sec t ~elapsed =
    Time.rate_per_sec ~events:t.events ~elapsed

  let rate_mbps t ~elapsed =
    if elapsed = 0 then 0.
    else float_of_int (t.bytes * 8) /. Time.to_sec_f elapsed /. 1e6

  let reset t =
    t.events <- 0;
    t.bytes <- 0
end

module Tw_avg = struct
  type t = {
    start : Time.t;
    mutable last_update : Time.t;
    mutable value : float;
    mutable weighted_sum : float;
  }

  let create ~now ~value =
    { start = now; last_update = now; value; weighted_sum = 0. }

  let advance t ~now =
    if Time.compare now t.last_update < 0 then
      invalid_arg "Tw_avg: time going backwards";
    let dt = Time.to_sec_f (Time.sub now t.last_update) in
    t.weighted_sum <- t.weighted_sum +. (t.value *. dt);
    t.last_update <- now

  let set t ~now v =
    advance t ~now;
    t.value <- v

  let mean t ~now =
    if Time.compare now t.last_update < 0 then
      invalid_arg "Tw_avg: time going backwards";
    let span = Time.to_sec_f (Time.sub now t.start) in
    if span <= 0. then t.value
    else begin
      let pending = Time.to_sec_f (Time.sub now t.last_update) in
      (t.weighted_sum +. (t.value *. pending)) /. span
    end

  let current t = t.value
end

module Histogram = struct
  (* HDR-style log-linear bucketing: values below 2^(sub_bits+1) get exact
     buckets; above that, each power-of-two octave is split into
     2^sub_bits linear sub-buckets, bounding relative error to ~3%. *)
  let sub_bits = 5
  let linear_limit = 1 lsl (sub_bits + 1) (* 64: exact below this *)
  let octaves = 62 - sub_bits
  let buckets = linear_limit + (octaves * (1 lsl sub_bits))

  type t = {
    counts : int array;
    mutable n : int;
    mutable sum : int;
    (* exact: samples are <= 2^62-ish ns and counts are bounded, so the
       integer sum cannot overflow in practice and [add] stays boxing-free *)
    mutable min_v : int;
    mutable max_v : int;
  }

  let create () =
    { counts = Array.make buckets 0; n = 0; sum = 0; min_v = max_int; max_v = 0 }

  let[@cdna.hot] msb v =
    let rec scan v acc = if v <= 1 then acc else scan (v lsr 1) (acc + 1) in
    scan v 0

  let[@cdna.hot] bucket_of v =
    if v < linear_limit then v
    else begin
      let m = msb v in
      let shift = m - sub_bits in
      let idx =
        linear_limit
        + ((m - (sub_bits + 1)) * (1 lsl sub_bits))
        + ((v lsr shift) - (1 lsl sub_bits))
      in
      Stdlib.min (buckets - 1) idx
    end

  let[@cdna.hot] add t v =
    let v = Stdlib.max 0 v in
    let b = bucket_of v in
    t.counts.(b) <- t.counts.(b) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum + v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v

  let count t = t.n
  let mean t = if t.n = 0 then 0. else float_of_int t.sum /. float_of_int t.n
  let max_value t = t.max_v
  let min_value t = if t.n = 0 then 0 else t.min_v

  (* Largest value mapping to bucket [i]. *)
  let bucket_upper i =
    if i < linear_limit then i
    else begin
      let rel = i - linear_limit in
      let octave = rel / (1 lsl sub_bits) in
      let sub = rel mod (1 lsl sub_bits) in
      let shift = octave + 1 in
      (((1 lsl sub_bits) + sub + 1) lsl shift) - 1
    end

  let percentile t p =
    if t.n = 0 then 0
    else if p <= 0. then min_value t
    else begin
      let p = Float.min 100. p in
      let target = p /. 100. *. float_of_int t.n in
      let rec scan i acc =
        if i >= buckets then t.max_v
        else begin
          let acc = acc + t.counts.(i) in
          if float_of_int acc >= target then
            Stdlib.min (bucket_upper i) t.max_v
          else scan (i + 1) acc
        end
      in
      (* Start at the first bucket that can be non-empty, so a tiny
         [target] cannot be satisfied by leading empty buckets. *)
      scan (bucket_of t.min_v) 0
    end

  (* Single-scan multi-quantile read-out: [qs] must be sorted ascending;
     writes the value at each quantile into [out] (same length). One pass
     over the buckets regardless of how many quantiles are requested, so
     p50/p99/p999 of a million-sample histogram costs one scan. *)
  let quantiles_into t qs out =
    let k = Array.length qs in
    if Array.length out <> k then
      invalid_arg "Histogram.quantiles_into: length mismatch";
    for i = 1 to k - 1 do
      if qs.(i) < qs.(i - 1) then
        invalid_arg "Histogram.quantiles_into: quantiles not sorted"
    done;
    if t.n = 0 then Array.fill out 0 k 0
    else begin
      let next = ref 0 in
      (* quantiles <= 0 are exactly the minimum, as in [percentile] *)
      while !next < k && qs.(!next) <= 0. do
        out.(!next) <- min_value t;
        incr next
      done;
      let i = ref (bucket_of t.min_v) and acc = ref 0 in
      while !next < k && !i < buckets do
        acc := !acc + t.counts.(!i);
        let facc = float_of_int !acc in
        while
          !next < k
          && facc >= Float.min 100. qs.(!next) /. 100. *. float_of_int t.n
        do
          out.(!next) <- Stdlib.min (bucket_upper !i) t.max_v;
          incr next
        done;
        incr i
      done;
      while !next < k do
        out.(!next) <- t.max_v;
        incr next
      done
    end

  let quantiles t qs =
    let out = Array.make (Array.length qs) 0 in
    quantiles_into t qs out;
    out

  let reset t =
    Array.fill t.counts 0 buckets 0;
    t.n <- 0;
    t.sum <- 0;
    t.min_v <- max_int;
    t.max_v <- 0

  let pp ppf t =
    Format.fprintf ppf "n=%d mean=%.1f min=%d p50=%d p99=%d max=%d" t.n
      (mean t) (min_value t) (percentile t 50.) (percentile t 99.)
      t.max_v
end
