type arg =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type phase =
  | Instant
  | Span_begin
  | Span_end
  | Complete of Time.t

type event = {
  time : Time.t;
  tag : string;
  name : string;
  phase : phase;
  pid : int;
  tid : int;
  args : (string * arg) list;
}

type sink = event -> unit

(* The installed sink and filter are per-OS-domain state (Domain.DLS),
   not globals: the sharded engine (Shard) drains different simulation
   partitions on different domains concurrently, each under its own
   recorder, and a shared ref would interleave their streams
   nondeterministically. On the main domain this behaves exactly like
   the old global ref. Freshly spawned domains start with no sink. *)
let sink_key : sink option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let filter_key : (string -> bool) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_sink s = Domain.DLS.set sink_key s
let current_sink () = Domain.DLS.get sink_key
let set_filter f = Domain.DLS.set filter_key f
let enabled () = Option.is_some (Domain.DLS.get sink_key)

let tag_enabled tag =
  match Domain.DLS.get sink_key with
  | None -> false
  | Some _ -> (
      match Domain.DLS.get filter_key with None -> true | Some f -> f tag)

let dispatch ev =
  match Domain.DLS.get sink_key with None -> () | Some sink -> sink ev

let record ?(pid = 0) ?(tid = 0) ?(args = []) ~time ~tag ~phase name =
  if tag_enabled tag then
    dispatch { time; tag; name; phase; pid; tid; args }

let instant ?pid ?tid ?args ~time ~tag name =
  record ?pid ?tid ?args ~time ~tag ~phase:Instant name

let complete ?pid ?tid ?args ~time ~dur ~tag name =
  record ?pid ?tid ?args ~time ~tag ~phase:(Complete dur) name

let span_begin ?pid ?tid ?args ~time ~tag name =
  record ?pid ?tid ?args ~time ~tag ~phase:Span_begin name

let span_end ?pid ?tid ?args ~time ~tag name =
  record ?pid ?tid ?args ~time ~tag ~phase:Span_end name

(* Legacy free-text entry point: the message thunk only runs when a sink
   is installed and the tag passes the filter. *)
let emit ~time ~tag msg =
  if tag_enabled tag then
    dispatch { time; tag; name = msg (); phase = Instant; pid = 0; tid = 0; args = [] }

(* ---------- Text sink ---------- *)

let arg_to_string = function
  | Str s -> s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b

let formatter_sink ppf ev =
  let phase_suffix =
    match ev.phase with
    | Instant -> ""
    | Span_begin -> " <begin>"
    | Span_end -> " <end>"
    | Complete d -> Printf.sprintf " (%s)" (Time.to_string d)
  in
  let args_suffix =
    match ev.args with
    | [] -> ""
    | args ->
        " "
        ^ String.concat " "
            (List.map (fun (k, v) -> k ^ "=" ^ arg_to_string v) args)
  in
  Format.fprintf ppf "[%a] %s: %s%s%s@." Time.pp ev.time ev.tag ev.name
    phase_suffix args_suffix

(* ---------- Chrome trace_event recorder ---------- *)

module Recorder = struct
  type t = {
    limit : int;
    mutable events_rev : event list;
    mutable count : int;
    mutable dropped : int;
    mutable names_rev : (int * string) list; (* pid -> display name *)
  }

  let create ?(limit = 2_000_000) () =
    { limit; events_rev = []; count = 0; dropped = 0; names_rev = [] }

  let sink t ev =
    if t.count < t.limit then begin
      t.events_rev <- ev :: t.events_rev;
      t.count <- t.count + 1
    end
    else t.dropped <- t.dropped + 1

  let count t = t.count
  let dropped t = t.dropped
  let events t = List.rev t.events_rev

  let clear t =
    t.events_rev <- [];
    t.count <- 0;
    t.dropped <- 0

  let set_process_name t ~pid name =
    t.names_rev <- (pid, name) :: t.names_rev

  let json_of_arg = function
    | Str s -> Json.String s
    | Int i -> Json.Int i
    | Float f -> Json.Float f
    | Bool b -> Json.Bool b

  (* Timestamps are microseconds in the trace_event format; simulated time
     is integral nanoseconds, so ts is exact with three decimals. *)
  let ts_of time = Json.Float (float_of_int (Time.to_ns time) /. 1e3)

  let json_of_event ev =
    let ph, extra =
      match ev.phase with
      | Instant -> ("i", [ ("s", Json.String "t") ])
      | Span_begin -> ("B", [])
      | Span_end -> ("E", [])
      | Complete d ->
          ("X", [ ("dur", Json.Float (float_of_int (Time.to_ns d) /. 1e3)) ])
    in
    let args =
      match ev.args with
      | [] -> []
      | args -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)) ]
    in
    Json.Obj
      ([
         ("name", Json.String ev.name);
         ("cat", Json.String ev.tag);
         ("ph", Json.String ph);
         ("ts", ts_of ev.time);
       ]
      @ extra
      @ [ ("pid", Json.Int ev.pid); ("tid", Json.Int ev.tid) ]
      @ args)

  let metadata_event (pid, name) =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]

  let to_chrome_json t =
    let meta =
      List.sort
        (fun (pa, na) (pb, nb) ->
          match Int.compare pa pb with 0 -> String.compare na nb | c -> c)
        (List.rev t.names_rev)
      |> List.map metadata_event
    in
    let evs = List.rev_map json_of_event t.events_rev in
    Json.Obj
      [
        ("traceEvents", Json.List (meta @ evs));
        ("displayTimeUnit", Json.String "ms");
      ]

  let to_chrome_string t = Json.to_string (to_chrome_json t)
end
