(** Imperative 4-ary min-heap keyed by [int].

    Priority queue used by the event queue. Elements are ordered by the
    integer key given at push time; ties are broken by insertion order
    (FIFO), which the discrete-event engine relies on for deterministic
    same-timestamp ordering.

    The implementation is unboxed — an interleaved [int array] of
    (key, slot) pairs plus per-slot value/seq arenas — so pushes and
    pops on the simulator hot path allocate nothing (amortized), never
    call polymorphic compare, and sift only plain ints (no write
    barriers). Values never move once pushed, which allows stable
    handles ({!push_handle}) that go stale automatically when their
    entry is popped. Popped value slots are overwritten with the
    [dummy] element, so the heap does not retain popped payloads. *)

type 'a t

(** [create ~dummy ()] makes an empty heap. [dummy] fills unused value
    slots; it is never returned by {!pop}/{!peek}. [max_entries] caps the
    number of concurrently pending entries (default and upper bound
    [2^24], the handle encoding's slot space): a push that would exceed
    it raises [Invalid_argument] {e before} mutating any heap state, so a
    caller that tracks its own pending count can rely on the heap being
    unchanged when the push fails. *)
val create : ?max_entries:int -> dummy:'a -> unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push h ~key v] inserts [v] with priority [key] (smaller pops first). *)
val push : 'a t -> key:int -> 'a -> unit

(** [push_handle h ~key v] is {!push} returning a handle to the pending
    entry. The handle stays valid until the entry is popped; {!get} and
    {!set} on a stale handle fail without touching anything (per-slot
    generation check). At most [2^24] entries may be pending at once. *)
val push_handle : 'a t -> key:int -> 'a -> int

(** [get h handle] is the value of the pending entry, or [None] if the
    entry was already popped (or the handle is garbage). *)
val get : 'a t -> int -> 'a option

(** [set h handle v] replaces the value of the pending entry, leaving
    its key and FIFO rank untouched. Returns [false] (doing nothing) if
    the entry was already popped. *)
val set : 'a t -> int -> 'a -> bool

(** [peek h] is the minimum element, or [None] when empty. *)
val peek : 'a t -> 'a option

(** [min_key h] is the key of the minimum element, or [None] when empty. *)
val min_key : 'a t -> int option

(** [pop h] removes and returns the minimum element, or [None] when empty. *)
val pop : 'a t -> 'a option

(** The [_exn] accessors are the allocation-free primitives behind the
    option-returning variants: guarded by {!is_empty}, an event-loop
    iteration built on them allocates nothing. Each raises
    [Invalid_argument] when the heap is empty. *)

(** [pop_exn h] removes and returns the minimum element.
    @raise Invalid_argument when empty. *)
val pop_exn : 'a t -> 'a

(** [peek_exn h] is the minimum element.
    @raise Invalid_argument when empty. *)
val peek_exn : 'a t -> 'a

(** [min_key_exn h] is the key of the minimum element.
    @raise Invalid_argument when empty. *)
val min_key_exn : 'a t -> int

val clear : 'a t -> unit

(** [to_list h] is the elements in unspecified order (for debugging). *)
val to_list : 'a t -> 'a list
