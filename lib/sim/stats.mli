(** Measurement helpers for simulations.

    Counters, rate meters, time-weighted averages and log-bucketed
    histograms. All are plain mutable values read out at the end of (or at
    intervals during) a run. *)

(** {1 Counter} *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

(** {1 Meter}

    Counts events and bytes between [reset] points and reports rates over a
    supplied elapsed time. *)

module Meter : sig
  type t

  val create : unit -> t

  (** [mark m ~bytes] records one event carrying [bytes] payload bytes. *)
  val mark : t -> bytes:int -> unit

  val events : t -> int
  val bytes : t -> int
  val rate_events_per_sec : t -> elapsed:Time.t -> float

  (** Throughput in megabits per second (SI: 1 Mb = 10^6 bits). *)
  val rate_mbps : t -> elapsed:Time.t -> float

  val reset : t -> unit
end

(** {1 Time-weighted average}

    Tracks a piecewise-constant quantity (queue depth, busy state) and its
    time-weighted mean. *)

module Tw_avg : sig
  type t

  (** [create ~now ~value] starts tracking from [now]. *)
  val create : now:Time.t -> value:float -> t

  (** [set t ~now v] records that the quantity changed to [v] at [now].
      Out-of-order updates raise [Invalid_argument]. *)
  val set : t -> now:Time.t -> float -> unit

  (** Time-weighted mean over [\[start, now\]]. Like {!set}, a [now]
      earlier than the last recorded update raises [Invalid_argument]
      (a stale read would silently contribute a negative slice). *)
  val mean : t -> now:Time.t -> float

  val current : t -> float
end

(** {1 Histogram}

    Logarithmically bucketed histogram of non-negative integer samples
    (latencies in ns, batch sizes, ...). Log-linear buckets cover the full
    non-negative [int] range with ~3% relative error, so one histogram spans
    nanosecond RTTs through multi-second open-loop tail latencies. *)

module Histogram : sig
  type t

  val create : unit -> t

  (** Allocation-free ([\[@cdna.hot\]]): safe to call per packet on the
      steady-state datapath. *)
  val add : t -> int -> unit
  val count : t -> int
  val mean : t -> float
  val max_value : t -> int
  val min_value : t -> int

  (** [percentile t p] approximates the [p]-th percentile ([0 <= p <= 100])
      as the upper bound of the bucket containing it, clamped to
      [\[min_value, max_value\]]; [p <= 0.] is exactly [min_value]. 0 when
      empty. *)
  val percentile : t -> float -> int

  (** [quantiles_into t qs out] resolves all quantiles in [qs] (percent
      values, sorted ascending, e.g. [\[|50.; 99.; 99.9|\]]) in a single
      bucket scan, writing results into [out] (same length). Semantics per
      entry match {!percentile}.
      @raise Invalid_argument on length mismatch or unsorted [qs]. *)
  val quantiles_into : t -> float array -> int array -> unit

  (** Allocating convenience wrapper over {!quantiles_into}. *)
  val quantiles : t -> float array -> int array

  val reset : t -> unit
  val pp : Format.formatter -> t -> unit
end
