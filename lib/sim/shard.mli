(** Parallel deterministic simulation core.

    Conservative synchronous parallel discrete-event simulation: the
    model is split into {e logical processes} (LPs) that share no state;
    each LP owns one {!Engine}. Cross-LP interactions go through
    latency-carrying channels, and the minimum channel latency — the
    {e lookahead} — bounds how far LPs may drain independently before a
    synchronization barrier.

    {2 Execution model}

    Time advances in global windows of the lookahead [L]. Within
    [\[w, w + L)] every LP runs its own engine to the window end with no
    interaction; this is sound because a message sent inside the window
    carries at least [L] of channel delay and thus cannot be delivered
    before [w + L]. At the barrier, all messages sent during the window
    are merged in the fixed total order {b (delivery time, source LP id,
    per-source sequence number)} and pushed into destination engines,
    whose FIFO tie-break then fixes same-instant delivery order.

    {2 Determinism}

    Outputs are byte-identical across shard counts and across the
    sequential and multi-domain backends: each LP's behavior depends
    only on its own deterministic engine order plus the merged inbound
    message order, and both are independent of how LPs are grouped onto
    shards or OS domains. Logical shards fix the partitioning; physical
    workers (OS domains) are pure execution policy. *)

(** A partition under construction: the first-class description of how
    the model is cut into LPs and which channels cross the cuts. *)
module Partition : sig
  type lp
  (** One logical process: an isolated {!Engine} plus its channels. *)

  type t

  val create : unit -> t

  (** [add t ~name engine] registers [engine] as a new LP. The engine
      must not be shared with any other LP, and after registration all
      cross-LP scheduling must go through {!Shard.send}. *)
  val add : t -> name:string -> Engine.t -> lp

  (** [connect t ~src ~dst ~min_latency] declares a directed channel.
      [min_latency] is the channel's lookahead contribution: {!Shard.send}
      on this channel must use a delay of at least [min_latency], which
      must be positive. Self-channels are rejected. *)
  val connect : t -> src:lp -> dst:lp -> min_latency:Time.t -> unit

  val lp_count : t -> int

  (** Global lookahead: the minimum latency over all declared channels,
      or [None] when no channel exists (LPs are fully independent). *)
  val lookahead : t -> Time.t option

  val name : lp -> string
  val engine : lp -> Engine.t

  (** Trace sink installed (on whichever OS domain drains it) while this
      LP's engine runs, so each LP records into its own stream. *)
  val set_sink : lp -> Trace.sink option -> unit
end

type t

(** [create ?shards ?workers p] freezes partition [p] for execution.

    [shards] (default 1) is the {e logical} shard count, clamped to the
    LP count; it selects the deterministic schedule and is what
    [--shards] exposes. [workers] is the number of OS domains actually
    draining shards, default [min shards (Domain.recommended_domain_count
    ())] — on a single-core host a multi-shard run therefore executes on
    one domain while producing the exact bytes a multi-domain run would.
    Pass [workers] explicitly (tests do) to force real [Domain.spawn]
    parallelism regardless of core count. *)
val create : ?shards:int -> ?workers:int -> Partition.t -> t

val shards : t -> int
val workers : t -> int

(** Cross-shard messages delivered through barriers so far. *)
val messages_routed : t -> int

(** [send t ~src ~dst ~delay fn] schedules [fn] on [dst]'s engine at
    [src]'s current time plus [delay]. Raises [Invalid_argument] when no
    channel [src -> dst] was declared or [delay] is below the channel's
    [min_latency] — the conservative-lookahead contract. Delivery
    happens at the next window barrier; [fn] runs on whichever OS domain
    owns [dst], under [dst]'s trace sink. *)
val send :
  t -> src:Partition.lp -> dst:Partition.lp -> delay:Time.t ->
  (unit -> unit) -> unit

(** Advance every LP to [until] (windows of the global lookahead, or a
    single window when no channels exist). Re-entrant calls with
    increasing [until] continue from the previous boundary; a smaller
    [until] raises [Invalid_argument]. An exception from any event
    handler (on any worker) tears the pool down and re-raises on the
    calling domain. *)
val run : t -> until:Time.t -> unit

(** Global window boundary reached by {!run} so far. *)
val now : t -> Time.t

(** [lookahead_of_link ~rate_bps ~propagation ~mtu_bytes] derives a
    sound channel lookahead from an {!Ethernet.Link}-style wire model:
    serialization time of one maximum-size frame plus propagation
    delay. Nothing can cross such a link faster, so partitions cut at
    link boundaries may use this as [min_latency]. *)
val lookahead_of_link :
  rate_bps:int -> propagation:Time.t -> mtu_bytes:int -> Time.t
