type t = {
  hyp : Hyp.t;
  mutable handle : Hyp.ctx_handle;
  costs : Guestos.Os_costs.t;
  mem : Memory.Phys_mem.t;
  materialize : bool;
  tx_slots : int;
  rx_slots : int;
  tx_pages : Memory.Addr.pfn array;
  rx_pages : Memory.Addr.pfn array;
  mutable ready : bool;
  mutable tx_prod : int; (* descriptors accepted by the hypervisor *)
  mutable tx_cons_seen : int;
  mutable rx_prod : int;
  pending : Ethernet.Frame.t Queue.t;
  (* Reused staging buffer for generating spec-only payloads into DMA
     pages; [Phys_mem.write_sub] copies synchronously. *)
  mutable scratch : Bytes.t;
  mutable tx_enqueue_busy : bool;
  mutable rx_enqueue_busy : bool;
  mutable rx_repost_backlog : int;
  mutable was_full : bool;
  mutable poll_scheduled : bool;
  mutable netdev : Guestos.Netdev.t option;
  mutable tx_count : int;
  mutable rx_count : int;
  mutable polls : int;
  mutable enqueue_errors : int;
  mutable recoveries : int;
  mutable generation : int;
      (* Bumped on rebind; in-flight hypercall continuations from the
         previous binding must not touch the new context. *)
  (* Ring/status pages, kept for re-registration at rebind. *)
  mutable init_pages : Memory.Addr.pfn * Memory.Addr.pfn * Memory.Addr.pfn;
}

let page_addr = Memory.Addr.base_of_pfn
let the_netdev t = Option.get t.netdev
let guest t = Hyp.guest_of t.handle

let post_kernel t ~cost fn =
  Xen.Hypervisor.kernel_work (Hyp.xen t.hyp) (guest t) ~cost fn

let tx_in_flight t = t.tx_prod - t.tx_cons_seen

let tx_space t =
  if not t.ready then 0
  else max 0 (t.tx_slots - tx_in_flight t - Queue.length t.pending)

let check_slots name n =
  if n < 2 || n > 256 || n land (n - 1) <> 0 then
    invalid_arg (name ^ ": slots must be a power of two in [2, 256]")

let descriptor_for ~pages ~slots ~idx ~len ~flags =
  let pfn = pages.(idx land (slots - 1)) in
  { Memory.Dma_desc.addr = page_addr pfn; len; flags; seqno = 0 }

(* ---------- Transmit ---------- *)

let rec pump_tx t =
  if t.ready && (not t.tx_enqueue_busy) && not (Queue.is_empty t.pending)
  then begin
    let room = t.tx_slots - tx_in_flight t in
    let k =
      min room
        (min (Queue.length t.pending) t.costs.Guestos.Os_costs.tx_batch_limit)
    in
    if k > 0 then begin
      let frames = List.init k (fun _ -> Queue.pop t.pending) in
      (* Stage payload bytes in this driver's own buffer pages. *)
      let descs =
        List.mapi
          (fun i frame ->
            let idx = t.tx_prod + i in
            let len = frame.Ethernet.Frame.payload_len in
            if t.materialize then begin
              let addr = page_addr t.tx_pages.(idx land (t.tx_slots - 1)) in
              match frame.Ethernet.Frame.data with
              | Some d -> Memory.Phys_mem.write t.mem ~addr d
              | None ->
                  if Bytes.length t.scratch < len then
                    t.scratch <- Bytes.create (max len 2048);
                  Ethernet.Frame.blit_payload
                    ~seed:frame.Ethernet.Frame.payload_seed ~len t.scratch
                    ~pos:0;
                  Memory.Phys_mem.write_sub t.mem ~addr t.scratch ~pos:0 ~len
            end;
            descriptor_for ~pages:t.tx_pages ~slots:t.tx_slots ~idx ~len
              ~flags:Memory.Dma_desc.flag_end_of_packet)
          frames
      in
      t.tx_enqueue_busy <- true;
      let generation = t.generation in
      Hyp.enqueue t.hyp t.handle Hyp.Tx descs (fun result ->
          (* Continuation runs at hypercall completion; the doorbell PIO
             is the guest's own (small) kernel work. A rebind in between
             invalidates it. *)
          if t.generation <> generation then ()
          else
          match result with
          | Ok prod ->
              post_kernel t
                ~cost:(Hyp.costs t.hyp).Cdna_costs.pio_doorbell (fun () ->
                  if t.generation <> generation then ()
                  else begin
                  List.iter
                    (fun f -> (Hyp.driver_if t.handle).Nic.Driver_if.stage_tx_meta f)
                    frames;
                  t.tx_prod <- prod;
                  (Hyp.driver_if t.handle).Nic.Driver_if.tx_doorbell prod;
                  t.tx_enqueue_busy <- false;
                  pump_tx t;
                  if t.was_full && tx_space t > 0 then begin
                    t.was_full <- false;
                    Guestos.Netdev.notify_writable (the_netdev t)
                  end
                  end)
          | Error _ ->
              t.enqueue_errors <- t.enqueue_errors + 1;
              t.tx_enqueue_busy <- false;
              (* Requeue the batch at the front, preserving order. *)
              let rest = Queue.create () in
              Queue.transfer t.pending rest;
              List.iter (fun f -> Queue.push f t.pending) frames;
              Queue.transfer rest t.pending)
    end
  end

let send_impl t frames =
  let n = List.length frames in
  if n > 0 then begin
    let cost =
      Sim.Time.mul_int t.costs.Guestos.Os_costs.driver_tx_per_pkt n
    in
    post_kernel t ~cost (fun () ->
        List.iter (fun f -> Queue.push f t.pending) frames;
        pump_tx t;
        if not (Queue.is_empty t.pending) then t.was_full <- true)
  end

(* ---------- Receive buffer posting ---------- *)

let rec post_rx_buffers t =
  if t.ready && (not t.rx_enqueue_busy) && t.rx_repost_backlog > 0 then begin
    let k = min t.rx_repost_backlog t.costs.Guestos.Os_costs.tx_batch_limit in
    t.rx_repost_backlog <- t.rx_repost_backlog - k;
    let descs =
      List.init k (fun i ->
          descriptor_for ~pages:t.rx_pages ~slots:t.rx_slots
            ~idx:(t.rx_prod + i) ~len:Memory.Addr.page_size ~flags:0)
    in
    t.rx_enqueue_busy <- true;
    let generation = t.generation in
    Hyp.enqueue t.hyp t.handle Hyp.Rx descs (fun result ->
        if t.generation <> generation then ()
        else
        match result with
        | Ok prod ->
            post_kernel t ~cost:(Hyp.costs t.hyp).Cdna_costs.pio_doorbell
              (fun () ->
                if t.generation <> generation then ()
                else begin
                  t.rx_prod <- prod;
                  (Hyp.driver_if t.handle).Nic.Driver_if.rx_doorbell prod;
                  t.rx_enqueue_busy <- false;
                  post_rx_buffers t
                end)
        | Error _ ->
            t.enqueue_errors <- t.enqueue_errors + 1;
            t.rx_repost_backlog <- t.rx_repost_backlog + k;
            t.rx_enqueue_busy <- false)
  end

(* ---------- Completion polling ---------- *)

let frame_from_buffer t (idx, frame) =
  if not t.materialize then frame
  else begin
    let pfn = t.rx_pages.(idx land (t.rx_slots - 1)) in
    let len = frame.Ethernet.Frame.payload_len in
    let data = Memory.Phys_mem.read t.mem ~addr:(page_addr pfn) ~len in
    { frame with Ethernet.Frame.data = Some data }
  end

let rec poll t () =
  t.polls <- t.polls + 1;
  t.poll_scheduled <- false;
  let hw = Hyp.driver_if t.handle in
  let tx_done = hw.Nic.Driver_if.take_tx_completions () in
  let rxs =
    hw.Nic.Driver_if.take_rx_completions
      ~max:t.costs.Guestos.Os_costs.rx_poll_budget
  in
  let n_rx = List.length rxs in
  let cost = Sim.Time.mul_int t.costs.Guestos.Os_costs.driver_rx_per_pkt n_rx in
  post_kernel t ~cost (fun () ->
      if tx_done > 0 then begin
        t.tx_cons_seen <- t.tx_cons_seen + tx_done;
        t.tx_count <- t.tx_count + tx_done;
        pump_tx t;
        Guestos.Netdev.notify_tx_done (the_netdev t) tx_done;
        if t.was_full && tx_space t > 0 then begin
          t.was_full <- false;
          Guestos.Netdev.notify_writable (the_netdev t)
        end
      end;
      if n_rx > 0 then begin
        let frames = List.map (frame_from_buffer t) rxs in
        t.rx_repost_backlog <- t.rx_repost_backlog + n_rx;
        post_rx_buffers t;
        t.rx_count <- t.rx_count + n_rx;
        Guestos.Netdev.deliver_rx (the_netdev t) frames
      end;
      if hw.Nic.Driver_if.rx_completions_pending () > 0 && not t.poll_scheduled
      then begin
        t.poll_scheduled <- true;
        post_kernel t ~cost:t.costs.Guestos.Os_costs.driver_wakeup_fixed
          (poll t)
      end)

let handle_interrupt t =
  if not t.poll_scheduled then begin
    t.poll_scheduled <- true;
    post_kernel t ~cost:t.costs.Guestos.Os_costs.driver_wakeup_fixed (poll t)
  end

let rec create ~hyp ~handle ~costs ?(tx_slots = 256) ?(rx_slots = 256)
    ?(materialize = false) () =
  check_slots "Cdna.Driver tx" tx_slots;
  check_slots "Cdna.Driver rx" rx_slots;
  let xen = Hyp.xen hyp in
  let guest = Hyp.guest_of handle in
  let alloc n = Xen.Hypervisor.alloc_pages xen guest n in
  let page1 l = match l with [ p ] -> p | _ -> assert false in
  let tx_ring_page = page1 (alloc 1) in
  let rx_ring_page = page1 (alloc 1) in
  let status_page = page1 (alloc 1) in
  let tx_pages = Array.of_list (alloc tx_slots) in
  let rx_pages = Array.of_list (alloc rx_slots) in
  let t =
    {
      hyp;
      handle;
      costs;
      mem = Xen.Hypervisor.mem xen;
      materialize;
      tx_slots;
      rx_slots;
      tx_pages;
      rx_pages;
      ready = false;
      tx_prod = 0;
      tx_cons_seen = 0;
      rx_prod = 0;
      pending = Queue.create ();
      scratch = Bytes.empty;
      tx_enqueue_busy = false;
      rx_enqueue_busy = false;
      rx_repost_backlog = 0;
      was_full = false;
      poll_scheduled = false;
      netdev = None;
      tx_count = 0;
      rx_count = 0;
      polls = 0;
      enqueue_errors = 0;
      recoveries = 0;
      generation = 0;
      init_pages = (tx_ring_page, rx_ring_page, status_page);
    }
  in
  let netdev =
    Guestos.Netdev.create ~mac:(Hyp.mac_of handle)
      ~send:(fun frames -> send_impl t frames)
      ~tx_space:(fun () -> tx_space t)
  in
  t.netdev <- Some netdev;
  t.init_pages <- (tx_ring_page, rx_ring_page, status_page);
  initialize t;
  t

(* Asynchronous bring-up: register rings and status with the hypervisor,
   then post the full complement of receive buffers. Used both at creation
   and after a migration rebind. *)
and initialize t =
  let tx_ring_page, rx_ring_page, status_page = t.init_pages in
  Hyp.set_event_handler t.handle (fun () -> handle_interrupt t);
  Hyp.register_ring t.hyp t.handle Hyp.Tx
    ~base:(page_addr tx_ring_page) ~slots:t.tx_slots (fun _ ->
      Hyp.register_ring t.hyp t.handle Hyp.Rx
        ~base:(page_addr rx_ring_page) ~slots:t.rx_slots (fun _ ->
          Hyp.register_status t.hyp t.handle ~addr:(page_addr status_page)
            (fun _ ->
              t.ready <- true;
              t.rx_repost_backlog <- t.rx_slots;
              post_rx_buffers t;
              Guestos.Netdev.notify_writable (the_netdev t))))

let rebind t handle =
  t.generation <- t.generation + 1;
  t.handle <- handle;
  t.ready <- false;
  t.tx_prod <- 0;
  t.tx_cons_seen <- 0;
  t.rx_prod <- 0;
  t.tx_enqueue_busy <- false;
  t.rx_enqueue_busy <- false;
  t.rx_repost_backlog <- 0;
  t.poll_scheduled <- false;
  initialize t

(* Guest-driven fault recovery: when the NIC halts this driver's context
   with a protection fault, ask the hypervisor for a fresh context (same
   MAC, bounded retry/backoff inside {!Hyp.reassign}) and rebind to it.
   Frames lost on the halted context are the transport's problem, exactly
   as for migration. *)
let rec enable_auto_recovery ?max_retries ?backoff t =
  Hyp.set_fault_hook t.handle (fun () ->
      Hyp.reassign t.hyp t.handle ?max_retries ?backoff (function
        | Ok fresh ->
            t.recoveries <- t.recoveries + 1;
            rebind t fresh;
            enable_auto_recovery ?max_retries ?backoff t
        | Error `No_free_context -> ()))

let netdev t = the_netdev t
let ready t = t.ready
let tx_count t = t.tx_count
let rx_count t = t.rx_count
let polls t = t.polls
let enqueue_errors t = t.enqueue_errors
let recoveries t = t.recoveries
let handle t = t.handle
