type protection = Full | Disabled | Iommu

type t = {
  hypercall_fixed : Sim.Time.t;
  validate_per_desc : Sim.Time.t;
  unpin_per_desc : Sim.Time.t;
  iommu_per_desc : Sim.Time.t;
  intr_decode_fixed : Sim.Time.t;
  map_context : Sim.Time.t;
  pio_doorbell : Sim.Time.t;
  context_swap : Sim.Time.t;
}

let default =
  {
    hypercall_fixed = Sim.Time.ns 900;
    validate_per_desc = Sim.Time.ns 420;
    unpin_per_desc = Sim.Time.ns 90;
    iommu_per_desc = Sim.Time.ns 220;
    intr_decode_fixed = Sim.Time.ns 600;
    map_context = Sim.Time.us 20;
    pio_doorbell = Sim.Time.ns 120;
    (* Saving + restoring a context image (1 KB mailbox partition, ring
       registers, firmware scratch) over MMIO dominates; comparable to two
       map_context operations. *)
    context_swap = Sim.Time.us 45;
  }
