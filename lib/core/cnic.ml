let num_contexts = 32

let default_config =
  {
    Nic.Nic_config.ricenic with
    Nic.Nic_config.name = "CDNA-RiceNIC";
    seqno_checking = true;
  }

type t = {
  engine : Sim.Engine.t;
  dp : Nic.Dp.t;
  dma_context_base : int;
  firmware : Nic.Firmware.t;
  irq : Bus.Irq.t;
  intr : Intr_vector.t;
  coalescer : Nic.Coalesce.t;
  mutable dirty : int; (* contexts with new completion state *)
  mutable fault_handler : ctx:int -> Nic.Dp.dir -> Nic.Dp.fault -> unit;
  mutable raised : int;
}

(* Flush the dirty-context set as one interrupt bit vector; if the
   circular buffer is full, hold the interrupt and retry shortly. *)
let rec flush t =
  if t.dirty <> 0 then begin
    let bits = t.dirty in
    let posted =
      Intr_vector.try_post t.intr ~bits ~on_done:(fun () ->
          t.raised <- t.raised + 1;
          Bus.Irq.assert_line t.irq)
    in
    if posted then t.dirty <- 0
    else
      ignore (Sim.Engine.schedule t.engine ~delay:(Sim.Time.us 5) (fun () -> flush t))
  end

let create engine ~mem ~dma ?(config = default_config) ~irq ~dma_context_base
    ~intr_base ?(intr_slots = 256) () =
  let self = ref None in
  let notify ~ctx =
    match !self with
    | None -> ()
    | Some t ->
        t.dirty <- t.dirty lor (1 lsl ctx);
        Nic.Coalesce.request t.coalescer
  in
  let on_fault ~ctx dir fault =
    match !self with Some t -> t.fault_handler ~ctx dir fault | None -> ()
  in
  let dp =
    Nic.Dp.create engine ~mem ~dma ~config ~contexts:num_contexts
      ~dma_context_base ~notify ~on_fault ()
  in
  let firmware =
    Nic.Firmware.create engine ~dp
      ~process_cost:config.Nic.Nic_config.firmware_delay ()
  in
  let intr =
    Intr_vector.create ~mem ~dma ~base:intr_base ~slots:intr_slots
      ~dma_context:(dma_context_base + num_contexts)
  in
  let coalescer =
    Nic.Coalesce.create engine ~min_gap:config.Nic.Nic_config.intr_min_gap
      ~fire:(fun () ->
        match !self with Some t -> flush t | None -> ())
  in
  let t =
    {
      engine;
      dp;
      dma_context_base;
      firmware;
      irq;
      intr;
      coalescer;
      dirty = 0;
      fault_handler = (fun ~ctx:_ _ _ -> ());
      raised = 0;
    }
  in
  self := Some t;
  t

let attach_link t link ~side = Nic.Dp.attach_link t.dp link ~side
let dp t = t.dp
let firmware t = t.firmware
let irq t = t.irq
let intr_vector t = t.intr
let dma t = Nic.Dp.dma t.dp
let desc_layout t = (Nic.Dp.config t.dp).Nic.Nic_config.desc_layout
let dma_context_of t ~ctx = t.dma_context_base + ctx
let intr_dma_context t = t.dma_context_base + num_contexts

let activate_context t ~ctx ~mac = Nic.Dp.activate t.dp ~ctx ~mac
let revoke_context t ~ctx = Nic.Dp.deactivate t.dp ~ctx

let set_expected_seqno t ~ctx ~tx ~rx =
  Nic.Dp.set_expected_seqno t.dp ~ctx ~tx ~rx

let free_context t =
  (* A context can be faulted with [active = false] (halted by a
     protection fault, not yet deactivated); its seqno/ring state is not
     reset, so handing it out would poison the next guest. Only a fully
     reset slot — neither active nor faulted — is free. *)
  let rec scan i =
    if i >= num_contexts then None
    else if
      (not (Nic.Dp.is_active t.dp ~ctx:i))
      && not (Nic.Dp.is_faulted t.dp ~ctx:i)
    then Some i
    else scan (i + 1)
  in
  scan 0

(* Context paging: the full per-context hardware image is the datapath's
   architectural state, the SRAM mailbox partition and the firmware's
   ring-geometry scratch. *)
type saved_context = {
  sc_dp : Nic.Dp.saved_ctx;
  sc_mailbox : Nic.Mailbox.saved_partition;
  sc_firmware : Nic.Firmware.saved_scratch;
}

let save_context t ~ctx =
  let sc_dp = Nic.Dp.save_context t.dp ~ctx in
  let sc_mailbox =
    Nic.Mailbox.save_partition (Nic.Firmware.mailbox t.firmware) ~ctx
  in
  let sc_firmware = Nic.Firmware.save_scratch t.firmware ~ctx in
  { sc_dp; sc_mailbox; sc_firmware }

let restore_context_image t ~ctx s =
  Nic.Firmware.restore_scratch t.firmware ~ctx s.sc_firmware;
  Nic.Mailbox.restore_partition (Nic.Firmware.mailbox t.firmware) ~ctx
    s.sc_mailbox;
  Nic.Dp.restore_context t.dp ~ctx s.sc_dp

let region t ~ctx = Nic.Firmware.region t.firmware ~ctx
let driver_if t ~ctx ~mapping = Nic.Firmware.driver_if t.firmware ~ctx ~mapping
let set_tx_ring t ~ctx ring = Nic.Dp.set_tx_ring t.dp ~ctx ring
let set_rx_ring t ~ctx ring = Nic.Dp.set_rx_ring t.dp ~ctx ring
let set_status_addr t ~ctx addr = Nic.Dp.set_status_addr t.dp ~ctx addr
let set_fault_handler t f = t.fault_handler <- f
let set_uncongested_hook t f = Nic.Dp.set_uncongested_hook t.dp f
let rx_congested t = Nic.Dp.rx_congested t.dp
let stats t = Nic.Dp.stats t.dp
let interrupts_raised t = t.raised

let register_metrics t m ~labels =
  Nic.Dp.register_metrics t.dp m ~labels;
  Nic.Coalesce.register_metrics t.coalescer m ~labels;
  Nic.Mailbox.register_metrics (Nic.Firmware.mailbox t.firmware) m ~labels;
  Sim.Metrics.gauge m ~labels "firmware.events_processed" (fun () ->
      Nic.Firmware.events_processed t.firmware);
  Sim.Metrics.gauge m ~labels "cnic.interrupts_raised" (fun () -> t.raised)
