(** The CDNA network interface (RiceNIC with CDNA firmware, paper §4).

    32 hardware contexts, each with a page-sized mailbox partition in NIC
    SRAM (mappable into exactly one guest), per-context descriptor rings
    fetched from host memory, MAC-based receive demultiplexing, fair
    round-robin transmit across contexts, sequence-number validation of
    every descriptor, and interrupt delivery by DMA-ing an interrupt bit
    vector into the hypervisor's circular buffer before raising the
    physical interrupt.

    The [activate]/[revoke]/[region] operations are privileged: only the
    hypervisor ({!Hyp}) calls them. Guests interact exclusively through
    the {!Nic.Driver_if.t} bound to their own mailbox mapping. *)

type t

(** Hardware contexts per NIC. *)
val num_contexts : int

(** [create engine ~mem ~dma ~irq ~dma_context_base ~intr_base ()] — the
    interrupt bit-vector buffer lives at hypervisor address [intr_base]
    ([intr_slots] entries, default 256). [dma_context_base] spaces this
    NIC's IOMMU context ids. *)
val create :
  Sim.Engine.t ->
  mem:Memory.Phys_mem.t ->
  dma:Bus.Dma_engine.t ->
  ?config:Nic.Nic_config.t ->
  irq:Bus.Irq.t ->
  dma_context_base:int ->
  intr_base:Memory.Addr.t ->
  ?intr_slots:int ->
  unit ->
  t

(** The CDNA variant of the RiceNIC configuration (sequence checking on). *)
val default_config : Nic.Nic_config.t

val attach_link : t -> Ethernet.Link.t -> side:Ethernet.Link.side -> unit
val dp : t -> Nic.Dp.t
val firmware : t -> Nic.Firmware.t
val irq : t -> Bus.Irq.t
val intr_vector : t -> Intr_vector.t

(** The shared DMA engine (for IOMMU installation). *)
val dma : t -> Bus.Dma_engine.t

(** The device's preferred descriptor format, published to the hypervisor
    (paper section 3.4). *)
val desc_layout : t -> Memory.Desc_layout.t

(** IOMMU context id of hardware context [ctx] ([base + ctx]); the
    interrupt bit-vector buffer writes as context [base + num_contexts]. *)
val dma_context_of : t -> ctx:int -> int

val intr_dma_context : t -> int

(** {1 Privileged operations (hypervisor only)} *)

val activate_context : t -> ctx:int -> mac:Ethernet.Mac_addr.t -> unit

(** Shuts down all pending operations of the context (paper section 3.1). *)
val revoke_context : t -> ctx:int -> unit

val set_expected_seqno : t -> ctx:int -> tx:int -> rx:int -> unit

(** Lowest fully reset slot — neither active nor {e faulted}: a context
    halted by a protection fault keeps its poisoned seqno/ring state
    until it is deactivated and must not be handed out. *)
val free_context : t -> int option

(** Opaque full image of one hardware context (datapath architectural
    state + SRAM mailbox partition + firmware scratch), the unit of
    hypervisor-mediated context paging. *)
type saved_context

(** [save_context t ~ctx] snapshots an active context's image and scrubs
    the SRAM partition and firmware scratch; the caller must then revoke
    the context (which resets the datapath slot). *)
val save_context : t -> ctx:int -> saved_context

(** [restore_context_image t ~ctx s] installs a saved image on a reset
    slot (any slot — not necessarily the one it was saved from). *)
val restore_context_image : t -> ctx:int -> saved_context -> unit

val region : t -> ctx:int -> Bus.Mmio.region

(** Driver interface bound to a guest's mapping of its partition. *)
val driver_if : t -> ctx:int -> mapping:Bus.Mmio.mapping -> Nic.Driver_if.t

(** Privileged ring programming, used when the hypervisor (not the guest)
    owns ring setup under full protection. *)
val set_tx_ring : t -> ctx:int -> Nic.Ring.t -> unit

val set_rx_ring : t -> ctx:int -> Nic.Ring.t -> unit
val set_status_addr : t -> ctx:int -> Memory.Addr.t -> unit

val set_fault_handler :
  t -> (ctx:int -> Nic.Dp.dir -> Nic.Dp.fault -> unit) -> unit

(** {1 Flow control and statistics} *)

val set_uncongested_hook : t -> (unit -> unit) -> unit
val rx_congested : t -> bool
val stats : t -> Nic.Dp.stats

(** Physical interrupts raised (after bit-vector DMA). *)
val interrupts_raised : t -> int

(** Expose datapath, coalescer, mailbox, firmware and interrupt gauges
    under [labels] (e.g. [[("nic", "cnic0")]]). *)
val register_metrics :
  t -> Sim.Metrics.t -> labels:(string * string) list -> unit
