(** Hypervisor support for CDNA (paper section 3).

    This module implements the software half of the CDNA split:

    - {b Context management} (3.1): assigning a NIC hardware context to a
      guest maps that context's mailbox partition into (only) that guest
      and activates the context with a unique MAC; revocation unmaps and
      shuts down pending operations.
    - {b Interrupt delivery} (3.2): the NIC's physical interrupt is
      captured by the hypervisor, which drains the interrupt bit-vector
      buffer and schedules a virtual interrupt to every guest whose
      context bit is set.
    - {b DMA memory protection} (3.3): guests cannot write descriptor
      rings; they call the {!enqueue} hypercall. The hypervisor validates
      that every page referenced by a descriptor is owned by the caller,
      pins the pages (incrementing reference counts so they cannot be
      reallocated while DMA is outstanding), stamps a strictly increasing
      sequence number, and writes the descriptor into the ring itself.
      Reference counts are dropped lazily when later enqueues observe
      completions — exactly the paper's scheme.

    Protection modes ({!Cdna_costs.protection}): [Full] as above;
    [Disabled] skips validation entirely (guests write rings directly —
    Table 4's upper bound); [Iommu] installs per-context IOMMU entries
    instead of software validation (section 5.3). *)

type t

val create :
  Xen.Hypervisor.t ->
  ?costs:Cdna_costs.t ->
  ?protection:Cdna_costs.protection ->
  unit ->
  t

val protection : t -> Cdna_costs.protection
val costs : t -> Cdna_costs.t
val xen : t -> Xen.Hypervisor.t

(** {1 Context oversubscription (paging)}

    With paging enabled, {!assign_context} no longer fails when every
    hardware context is taken: the least-recently-used resident context is
    {e paged out} — its full hardware image (mailbox partition, ring
    registers, expected seqnos, firmware scratch) saved to a per-guest
    area, its partition mapping revoked, the slot reset. The next hardware
    access by the paged-out guest faults the context back in on a free (or
    freshly evicted) slot, transparently to the guest driver: transmit
    state is restored losslessly, receive losses are recovered by peer
    retransmission. Each save or restore costs
    {!Cdna_costs.t.context_swap} of hypervisor time, charged to the guest
    whose access triggered the swap. *)

(** Allow more guests than hardware contexts on every registered NIC. *)
val enable_paging : t -> unit

val paging_enabled : t -> bool

(** Context save/restore operations performed so far (a swap that evicts
    a victim and restores another image counts as two). Also exposed as
    the [cdna.ctx_swaps] gauge when paging is enabled. *)
val ctx_swaps : t -> int

(** [add_nic t nic] registers a CDNA NIC: routes its physical interrupt
    into the bit-vector decode path, and (in [Iommu] mode) installs the
    IOMMU on the shared DMA engine for the NIC's contexts. *)
val add_nic : t -> Cnic.t -> unit

(** {1 Context assignment} *)

type ctx_handle

type enqueue_error =
  [ `Not_owner of Memory.Addr.pfn  (** Validation failed on this page. *)
  | `Ring_full
  | `Ring_unregistered
  | `Revoked ]

(** [assign_context t ~nic ~guest ~mac ~isr_cost] picks a free hardware
    context, maps its partition into [guest], activates it, resets
    sequence numbers and binds an event channel (virtual ISR cost
    [isr_cost]). *)
val assign_context :
  t ->
  nic:Cnic.t ->
  guest:Xen.Domain.t ->
  mac:Ethernet.Mac_addr.t ->
  isr_cost:Sim.Time.t ->
  (ctx_handle, [ `No_free_context ]) result

(** Install the guest driver's virtual-interrupt handler. *)
val set_event_handler : ctx_handle -> (unit -> unit) -> unit

(** [set_fault_hook h f] installs a hook run (in a fresh simulation event)
    whenever the NIC reports a protection fault on this context. Used by
    the guest driver's automatic recovery (see {!Driver.enable_auto_recovery}). *)
val set_fault_hook : ctx_handle -> (unit -> unit) -> unit

(** [revoke t h] revokes the context at any time: unmaps the partition
    (subsequent PIO faults), deactivates the hardware context, and drops
    all page pins. *)
val revoke : t -> ctx_handle -> unit

(** [migrate t h ~to_nic] moves a guest's connectivity to another CDNA
    NIC: revokes the old context and assigns a fresh one on [to_nic] with
    the same MAC address and virtual-interrupt binding. Packets in flight
    on the old context are shut down (the transport recovers, as for any
    link flap); the guest driver must re-register rings (see
    {!Driver.rebind}). Built from the paper's observation that "the
    hypervisor can also revoke a context at any time". *)
val migrate :
  t -> ctx_handle -> to_nic:Cnic.t -> (ctx_handle, [ `No_free_context ]) result

(** [reassign t h k] recovers from a context fault: revokes [h] (unpinning
    everything) and assigns a fresh context on the same NIC with the MAC
    recorded at assignment time and the same interrupt binding. If no
    context is free, retries up to [max_retries] times (default 3) with
    exponential backoff starting at [backoff] (default 100 us) before
    reporting failure to [k]. *)
val reassign :
  t ->
  ctx_handle ->
  ?max_retries:int ->
  ?backoff:Sim.Time.t ->
  ((ctx_handle, [ `No_free_context ]) result -> unit) ->
  unit

val is_revoked : ctx_handle -> bool
val guest_of : ctx_handle -> Xen.Domain.t
val ctx_id : ctx_handle -> int
val nic_of : ctx_handle -> Cnic.t

(** The MAC recorded at {!assign_context} time (survives revocation). *)
val mac_of : ctx_handle -> Ethernet.Mac_addr.t

(** The guest's hardware interface (PIO through its own mapping). *)
val driver_if : ctx_handle -> Nic.Driver_if.t

(** Virtual interrupts delivered to this context's guest. *)
val virq_deliveries : ctx_handle -> int

(** {1 Guest hypercalls}

    All are asynchronous: they post hypervisor work on the calling guest's
    vcpu and invoke the continuation with the result. They must be called
    from the guest's execution context. *)

type dir = Tx | Rx

(** [register_ring t h dir ~base ~slots k] validates the ring memory
    (owned by the guest), records and programs it, and establishes the
    hypervisor's exclusive write access to it. *)
val register_ring :
  t ->
  ctx_handle ->
  dir ->
  base:Memory.Addr.t ->
  slots:int ->
  ((unit, enqueue_error) result -> unit) ->
  unit

(** [register_status t h ~addr k] sets the consumer-index writeback
    address (validated like any guest page). *)
val register_status :
  t ->
  ctx_handle ->
  addr:Memory.Addr.t ->
  ((unit, enqueue_error) result -> unit) ->
  unit

(** [enqueue t h dir descs k] — the protected descriptor-enqueue
    hypercall. Descriptor sequence numbers are assigned by the hypervisor
    (the [seqno] field of the inputs is ignored). On success the
    continuation receives the new producer index to write to the doorbell
    mailbox. The whole batch is rejected on the first invalid page.

    In [Disabled] mode this performs the (cheap, unvalidated) ring writes
    the guest would otherwise do itself. *)
val enqueue :
  t ->
  ctx_handle ->
  dir ->
  Memory.Dma_desc.t list ->
  ((int, enqueue_error) result -> unit) ->
  unit

(** {1 Diagnostics} *)

(** Pages currently pinned for this context (both rings). *)
val pinned_pages : ctx_handle -> int

(** Protection faults reported by NICs: (guest domain id, context id). *)
val faults : t -> (Host.Category.domain_id * int) list

(** Total enqueue hypercalls executed. *)
val enqueue_calls : t -> int

(** Expose [cdna.enqueue_calls], [cdna.faults] and per-(NIC, context)
    [cdna.ctx.pinned_pages] / [cdna.ctx.virqs] gauges. NICs are labelled
    [cnic0], [cnic1], ... in {!add_nic} order; call after all NICs are
    registered. *)
val register_metrics : t -> Sim.Metrics.t -> unit
