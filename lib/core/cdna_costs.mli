(** CPU costs of the CDNA hypervisor mechanisms, and the protection mode.

    The paper's Table 4 compares full software DMA protection against a
    protection-disabled upper bound (standing in for an ideal IOMMU); the
    discussion in section 5.3 motivates the explicit IOMMU mode, which we
    also implement for the ablation benchmarks. *)

type protection =
  | Full  (** Hypercall validation + page pinning + sequence numbers. *)
  | Disabled
      (** No validation: guests write descriptor rings directly (Table 4's
          "DMA Protection Disabled" row). *)
  | Iommu
      (** Per-context IOMMU checked by the DMA engine; the hypervisor only
          maintains IOMMU entries (section 5.3). *)

type t = {
  hypercall_fixed : Sim.Time.t;  (** Entry/exit of an enqueue hypercall. *)
  validate_per_desc : Sim.Time.t;
      (** Ownership check + pin + seqno stamp + ring write, per descriptor. *)
  unpin_per_desc : Sim.Time.t;  (** Lazy completion processing. *)
  iommu_per_desc : Sim.Time.t;  (** IOMMU entry install/remove. *)
  intr_decode_fixed : Sim.Time.t;  (** Bit-vector buffer drain per interrupt. *)
  map_context : Sim.Time.t;  (** Context assignment/revocation. *)
  pio_doorbell : Sim.Time.t;  (** Guest's mailbox write after enqueue. *)
  context_swap : Sim.Time.t;
      (** Paging one hardware context out and another in when guests
          oversubscribe the NIC's context slots: mailbox-partition copy,
          ring-register save/restore and firmware-scratch reload, charged
          to the hypervisor on the faulting guest's path. *)
}

val default : t
