[@@@cdna.privileged
  "hypervisor core: validates and executes ownership transitions (pin, \
   IOMMU grant/revoke) on behalf of guests; this is the trusted layer the \
   P rules protect"]

type dir = Tx | Rx

type enqueue_error =
  [ `Not_owner of Memory.Addr.pfn | `Ring_full | `Ring_unregistered | `Revoked ]

(* Hypervisor-side state of one ring of one context. *)
type ring_state = {
  mutable ring : Nic.Ring.t option;
  mutable prod : int;
  mutable seq : int;
  (* Pages pinned per enqueued descriptor, unpinned lazily when later
     enqueues observe the consumer index has passed them. *)
  pins : (int * Memory.Addr.pfn list) Queue.t;
  mutable pinned : int;
}

type ctx_handle = {
  nic : Cnic.t;
  (* Slot the handle currently occupies; changes when context paging moves
     the guest to a different hardware context. Meaningless while paged
     out ([resident = false]). *)
  mutable ctx : int;
  guest : Xen.Domain.t;
  mac : Ethernet.Mac_addr.t;
      (* As recorded at assignment; the NIC forgets it at revocation, but
         migration and recovery must keep presenting the same address. *)
  isr_cost : Sim.Time.t;
  mutable mapping : Bus.Mmio.mapping;
  (* [hw] is what the guest driver holds: a stable wrapper that faults the
     context back in before delegating to [hw_live], the interface bound
     to the current slot/mapping. *)
  mutable hw : Nic.Driver_if.t;
  mutable hw_live : Nic.Driver_if.t;
  chan : Xen.Event_channel.t;
  handler : (unit -> unit) ref;
  fault_hook : (unit -> unit) option ref;
  mutable revoked : bool;
  tx : ring_state;
  rx : ring_state;
  mutable status_addr : Memory.Addr.t option;
  (* Context-paging state. *)
  mutable resident : bool;
  mutable saved : Cnic.saved_context option;
  mutable last_use : int; (* LRU clock value of the last hardware access *)
  (* Ring/status pages granted in IOMMU mode (pins track data pages). *)
  mutable granted_extra : Memory.Addr.pfn list;
}

type t = {
  xen : Xen.Hypervisor.t;
  costs : Cdna_costs.t;
  protection : Cdna_costs.protection;
  mutable iommu : Memory.Iommu.t option;
  mutable nics : (Cnic.t * ctx_handle option array) list;
  mutable faults : (Host.Category.domain_id * int) list;
  mutable enqueue_calls : int;
  (* Context oversubscription: when [paging] is on, assignment past the
     NIC's context count evicts the least-recently-used resident context
     to a per-guest save area instead of failing. *)
  mutable paging : bool;
  mutable use_clock : int;
  mutable ctx_swaps : int;
}

let trace t fmt_msg =
  Sim.Trace.emit
    ~time:(Sim.Engine.now (Xen.Hypervisor.engine t.xen))
    ~tag:"cdna-hyp" fmt_msg

let create xen ?(costs = Cdna_costs.default) ?(protection = Cdna_costs.Full) () =
  {
    xen;
    costs;
    protection;
    iommu = None;
    nics = [];
    faults = [];
    enqueue_calls = 0;
    paging = false;
    use_clock = 0;
    ctx_swaps = 0;
  }

let enable_paging t = t.paging <- true
let paging_enabled t = t.paging
let ctx_swaps t = t.ctx_swaps

let protection t = t.protection
let costs t = t.costs
let xen t = t.xen
let mem t = Xen.Hypervisor.mem t.xen

let slots_of t nic =
  match List.find_opt (fun (n, _) -> n == nic) t.nics with
  | Some (_, slots) -> slots
  | None -> invalid_arg "Cdna.Hyp: NIC not registered"

let handle_of t nic ~ctx =
  let slots = slots_of t nic in
  if ctx < 0 || ctx >= Array.length slots then None else slots.(ctx)

(* IOMMU table entries are keyed by the DMA context the NIC transfers
   with: its dma_context_base + hardware context id. *)
let iommu_ctx h = Cnic.dma_context_of h.nic ~ctx:h.ctx

let add_nic t nic =
  if List.exists (fun (n, _) -> n == nic) t.nics then ()
  else begin
    t.nics <- (nic, Array.make Cnic.num_contexts None) :: t.nics;
    (match t.protection with
    | Cdna_costs.Iommu ->
        let iommu =
          match t.iommu with
          | Some i -> i
          | None ->
              let i = Memory.Iommu.create () in
              t.iommu <- Some i;
              i
        in
        Bus.Dma_engine.set_iommu (Cnic.dma nic) (Some iommu);
        (* The interrupt bit-vector buffer (hypervisor memory) must stay
           reachable by the NIC's interrupt-delivery DMA. *)
        let intr = Cnic.intr_vector nic in
        let first = Memory.Addr.pfn_of (Intr_vector.base intr) in
        let last =
          Memory.Addr.pfn_of
            (Intr_vector.base intr + (Intr_vector.slots intr * 8) - 1)
        in
        for pfn = first to last do
          Memory.Iommu.grant iommu ~context:(Cnic.intr_dma_context nic) pfn
        done
    | Cdna_costs.Full | Cdna_costs.Disabled -> ());
    (* Fault reports from the NIC are guest-specific (paper 3.3). The
       per-handle recovery hook runs in a fresh event so that revocation
       does not reenter the datapath mid-fault. *)
    Cnic.set_fault_handler nic (fun ~ctx _dir _fault ->
        match handle_of t nic ~ctx with
        | Some h ->
            t.faults <- (Xen.Domain.id h.guest, ctx) :: t.faults;
            (match !(h.fault_hook) with
            | None -> ()
            | Some hook ->
                ignore
                  (Sim.Engine.schedule
                     (Xen.Hypervisor.engine t.xen)
                     ~delay:Sim.Time.zero hook))
        | None -> ());
    (* Physical interrupt -> drain bit vectors -> virtual interrupts. *)
    Xen.Hypervisor.route_irq t.xen (Cnic.irq nic) (fun () ->
        Host.Cpu.post_irq (Xen.Hypervisor.cpu t.xen)
          ~cost:t.costs.Cdna_costs.intr_decode_fixed (fun () ->
            let vectors = Intr_vector.drain (Cnic.intr_vector nic) in
            let bits = List.fold_left ( lor ) 0 vectors in
            trace t (fun () ->
                Printf.sprintf "interrupt: %d vectors, bits=0x%x"
                  (List.length vectors) bits);
            let slots = slots_of t nic in
            Array.iteri
              (fun ctx handle ->
                if bits land (1 lsl ctx) <> 0 then
                  match handle with
                  | Some h when not h.revoked ->
                      Xen.Event_channel.notify_from_hypervisor h.chan
                  | Some _ | None -> ())
              slots))
  end

let fresh_ring_state () =
  { ring = None; prod = 0; seq = 0; pins = Queue.create (); pinned = 0 }

(* ---------- Context paging (oversubscription) ---------- *)

(* Every page the NIC may DMA on this context's behalf: pinned data pages
   plus ring/status pages. Only consulted in IOMMU protection mode, where
   grants are keyed by the (slot-derived) DMA context and must move with
   the guest across slots. *)
let iommu_all_pfns h =
  let of_ring rs acc =
    Queue.fold (fun acc (_, pfns) -> List.rev_append pfns acc) acc rs.pins
  in
  of_ring h.tx (of_ring h.rx h.granted_extra)

let iommu_grants_apply t h ~f =
  match (t.protection, t.iommu) with
  | Cdna_costs.Iommu, Some iommu ->
      List.iter
        (fun pfn -> f iommu ~context:(iommu_ctx h) pfn)
        (iommu_all_pfns h)
  | _ -> ()

(* Swap a resident context out to its handle's save area: snapshot the
   hardware image, revoke the guest's partition mapping, reset the slot.
   Page pins are kept — the guest still owns its rings and buffers; only
   the hardware residency changes (paper-style revocation plus SuperNIC's
   oversubscription argument). *)
let page_out t victim =
  let nic = victim.nic in
  trace t (fun () ->
      Printf.sprintf "page-out dom%d ctx%d"
        (Xen.Domain.id victim.guest)
        victim.ctx);
  let image = Cnic.save_context nic ~ctx:victim.ctx in
  Bus.Mmio.revoke victim.mapping;
  Cnic.revoke_context nic ~ctx:victim.ctx;
  (* The slot's DMA context will belong to the next occupant: the victim's
     IOMMU grants must not let the newcomer reach the victim's pages. *)
  iommu_grants_apply t victim ~f:Memory.Iommu.revoke;
  let slots = slots_of t nic in
  slots.(victim.ctx) <- None;
  victim.saved <- Some image;
  victim.resident <- false;
  t.ctx_swaps <- t.ctx_swaps + 1

(* Least-recently-used resident, non-faulted context; ties break to the
   lowest slot (deterministic). *)
let pick_victim t nic =
  let slots = slots_of t nic in
  let best = ref None in
  Array.iter
    (fun slot ->
      match slot with
      | Some h
        when not (Nic.Dp.is_faulted (Cnic.dp nic) ~ctx:h.ctx) -> (
          match !best with
          | Some b when b.last_use <= h.last_use -> ()
          | _ -> best := Some h)
      | Some _ | None -> ())
    slots;
  !best

(* Bring a paged-out context back: free (or steal) a slot, rebind the
   mapping and live interface, restore the saved image, and charge the
   swap work to the faulting guest as hypervisor time. *)
let page_in t h =
  let nic = h.nic in
  let evicted =
    match Cnic.free_context nic with
    | Some _ -> false
    | None -> (
        match pick_victim t nic with
        | Some v ->
            page_out t v;
            true
        | None -> invalid_arg "Cdna.Hyp: no evictable context")
  in
  let ctx =
    match Cnic.free_context nic with
    | Some c -> c
    | None -> invalid_arg "Cdna.Hyp: no free context after eviction"
  in
  let image =
    match h.saved with
    | Some s -> s
    | None -> invalid_arg "Cdna.Hyp: page_in without saved image"
  in
  h.saved <- None;
  h.ctx <- ctx;
  h.mapping <- Bus.Mmio.map (Cnic.region nic ~ctx);
  h.hw_live <- Cnic.driver_if nic ~ctx ~mapping:h.mapping;
  (* Grants must be installed before the restore kicks the DMA engines. *)
  iommu_grants_apply t h ~f:Memory.Iommu.grant;
  Cnic.restore_context_image nic ~ctx image;
  let slots = slots_of t nic in
  slots.(ctx) <- Some h;
  h.resident <- true;
  t.ctx_swaps <- t.ctx_swaps + 1;
  trace t (fun () ->
      Printf.sprintf "page-in dom%d -> ctx%d%s"
        (Xen.Domain.id h.guest)
        ctx
        (if evicted then " (evicted lru)" else ""));
  (* The restore itself is instantaneous hardware state surgery; its CPU
     cost (partition copy, register writes) is charged post-hoc on the
     guest's vcpu, like the unpin delta in [enqueue]. *)
  let n_swaps = if evicted then 2 else 1 in
  Xen.Hypervisor.hypercall t.xen ~from:h.guest
    ~cost:(Sim.Time.mul_int t.costs.Cdna_costs.context_swap n_swaps)
    (fun () -> ())

(* Touch the LRU clock and fault the context in if it is paged out. Every
   hardware access from the guest driver goes through here. *)
let ensure_resident t h =
  t.use_clock <- t.use_clock + 1;
  h.last_use <- t.use_clock;
  if (not h.resident) && not h.revoked then page_in t h

(* The stable driver-facing interface: delegates every hardware operation
   to the context's current live binding, faulting it in first. *)
let wrap t h : Nic.Driver_if.t =
  {
    Nic.Driver_if.describe = h.hw_live.Nic.Driver_if.describe;
    desc_layout = h.hw_live.Nic.Driver_if.desc_layout;
    setup_tx_ring =
      (fun ring ->
        ensure_resident t h;
        h.hw_live.Nic.Driver_if.setup_tx_ring ring);
    setup_rx_ring =
      (fun ring ->
        ensure_resident t h;
        h.hw_live.Nic.Driver_if.setup_rx_ring ring);
    setup_status =
      (fun addr ->
        ensure_resident t h;
        h.hw_live.Nic.Driver_if.setup_status addr);
    tx_doorbell =
      (fun prod ->
        ensure_resident t h;
        h.hw_live.Nic.Driver_if.tx_doorbell prod);
    rx_doorbell =
      (fun prod ->
        ensure_resident t h;
        h.hw_live.Nic.Driver_if.rx_doorbell prod);
    stage_tx_meta =
      (fun frame ->
        ensure_resident t h;
        h.hw_live.Nic.Driver_if.stage_tx_meta frame);
    take_tx_completions =
      (fun () ->
        ensure_resident t h;
        h.hw_live.Nic.Driver_if.take_tx_completions ());
    take_rx_completions =
      (fun ~max ->
        ensure_resident t h;
        h.hw_live.Nic.Driver_if.take_rx_completions ~max);
    rx_completions_pending =
      (fun () ->
        ensure_resident t h;
        h.hw_live.Nic.Driver_if.rx_completions_pending ());
  }

let assign_context t ~nic ~guest ~mac ~isr_cost =
  let slots = slots_of t nic in
  let slot =
    match Cnic.free_context nic with
    | Some ctx -> Some (ctx, false)
    | None ->
        if not t.paging then None
        else (
          match pick_victim t nic with
          | None -> None
          | Some v -> (
              page_out t v;
              match Cnic.free_context nic with
              | Some ctx -> Some (ctx, true)
              | None -> None))
  in
  match slot with
  | None -> Error `No_free_context
  | Some (ctx, evicted) ->
      let mapping = Bus.Mmio.map (Cnic.region nic ~ctx) in
      let handler = ref (fun () -> ()) in
      let chan =
        Xen.Event_channel.create t.xen ~target:guest ~isr_cost
          ~handler:(fun () -> !handler ())
      in
      Cnic.activate_context nic ~ctx ~mac;
      Cnic.set_expected_seqno nic ~ctx ~tx:0 ~rx:0;
      let live = Cnic.driver_if nic ~ctx ~mapping in
      t.use_clock <- t.use_clock + 1;
      let h =
        {
          nic;
          ctx;
          guest;
          mac;
          isr_cost;
          mapping;
          hw = live;
          hw_live = live;
          chan;
          handler;
          fault_hook = ref None;
          revoked = false;
          tx = fresh_ring_state ();
          rx = fresh_ring_state ();
          status_addr = None;
          resident = true;
          saved = None;
          last_use = t.use_clock;
          granted_extra = [];
        }
      in
      h.hw <- wrap t h;
      slots.(ctx) <- Some h;
      if evicted then
        Xen.Hypervisor.hypercall t.xen ~from:guest
          ~cost:t.costs.Cdna_costs.context_swap (fun () -> ());
      Ok h

let set_event_handler h f = h.handler := f
let set_fault_hook h f = h.fault_hook := Some f

let unpin_all t h rs =
  let mem = mem t in
  Queue.iter
    (fun (_, pfns) ->
      List.iter
        (fun pfn ->
          match t.protection with
          | Cdna_costs.Full -> Memory.Phys_mem.put_ref mem pfn
          | Cdna_costs.Iommu -> (
              (* A paged-out context's grants were already revoked when it
                 left its slot; the slot id it remembers may belong to
                 another guest by now. *)
              if h.resident then
                match t.iommu with
                | Some iommu ->
                    Memory.Iommu.revoke iommu ~context:(iommu_ctx h) pfn
                | None -> ())
          | Cdna_costs.Disabled -> ())
        pfns)
    rs.pins;
  Queue.clear rs.pins;
  rs.pinned <- 0

let revoke t h =
  if not h.revoked then begin
    h.revoked <- true;
    if h.resident then begin
      Bus.Mmio.revoke h.mapping;
      Cnic.revoke_context h.nic ~ctx:h.ctx
    end
    else h.saved <- None;
    unpin_all t h h.tx;
    unpin_all t h h.rx;
    if h.resident then begin
      let slots = slots_of t h.nic in
      slots.(h.ctx) <- None
    end
  end

let migrate t h ~to_nic =
  (* The handle remembers the MAC from assignment time: after revocation
     the NIC no longer knows it, and a placeholder MAC would collide in
     the target's MAC table when several revoked contexts migrate. *)
  let mac = h.mac in
  let handler = !(h.handler) in
  revoke t h;
  match
    assign_context t ~nic:to_nic ~guest:h.guest ~mac ~isr_cost:h.isr_cost
  with
  | Error `No_free_context -> Error `No_free_context
  | Ok fresh ->
      trace t (fun () ->
          Printf.sprintf "migrated dom%d ctx%d -> ctx%d"
            (Xen.Domain.id h.guest) h.ctx fresh.ctx);
      set_event_handler fresh handler;
      Ok fresh

(* Recovery from a context fault (or any revocation): tear the faulted
   context down completely — unpin, revoke, free the slot — then assign a
   fresh context on the same NIC with the same MAC and interrupt binding.
   Contexts are a finite hardware resource, so assignment may transiently
   fail; retry with exponential backoff, bounded. *)
let reassign t h ?(max_retries = 3) ?(backoff = Sim.Time.us 100) k =
  let engine = Xen.Hypervisor.engine t.xen in
  let handler = !(h.handler) in
  revoke t h;
  let rec attempt retries_left backoff =
    match
      assign_context t ~nic:h.nic ~guest:h.guest ~mac:h.mac
        ~isr_cost:h.isr_cost
    with
    | Ok fresh ->
        trace t (fun () ->
            Printf.sprintf "reassigned dom%d ctx%d -> ctx%d"
              (Xen.Domain.id h.guest) h.ctx fresh.ctx);
        set_event_handler fresh handler;
        k (Ok fresh)
    | Error `No_free_context ->
        if retries_left <= 0 then k (Error `No_free_context)
        else
          ignore
            (Sim.Engine.schedule engine ~delay:backoff (fun () ->
                 attempt (retries_left - 1) (Sim.Time.mul_int backoff 2)))
  in
  attempt max_retries backoff

let is_revoked h = h.revoked
let guest_of h = h.guest
let ctx_id h = h.ctx
let nic_of h = h.nic
let mac_of h = h.mac
let driver_if h = h.hw
let virq_deliveries h = Xen.Event_channel.deliveries h.chan

(* ---------- Hypercalls ---------- *)

let ring_state h = function Tx -> h.tx | Rx -> h.rx

let validate_pages t h pfns =
  let mem = mem t in
  let rec check = function
    | [] -> Ok ()
    | pfn :: rest ->
        if Memory.Phys_mem.owned_by mem pfn (Xen.Domain.id h.guest) then
          check rest
        else Error (`Not_owner pfn)
  in
  check pfns

let register_ring t h dir ~base ~slots k =
  let cost = t.costs.Cdna_costs.map_context in
  Xen.Hypervisor.hypercall t.xen ~from:h.guest ~cost (fun () ->
      if h.revoked then k (Error `Revoked)
      else begin
        ensure_resident t h;
        (* The NIC told us its descriptor format (paper 3.4); rings are
           laid out with its stride. *)
        let layout = Cnic.desc_layout h.nic in
        let ring =
          Nic.Ring.create ~base ~slots
            ~desc_bytes:layout.Memory.Desc_layout.size ()
        in
        if slots > Seqno.max_ring_slots then
          invalid_arg "Cdna.Hyp.register_ring: ring too large for seqno space";
        let pfns =
          Memory.Addr.pages_spanned ~addr:base
            ~len:(Nic.Ring.size_bytes ring)
        in
        match
          if t.protection = Cdna_costs.Disabled then Ok ()
          else validate_pages t h pfns
        with
        | Error e -> k (Error e)
        | Ok () ->
            let rs = ring_state h dir in
            rs.ring <- Some ring;
            rs.prod <- 0;
            rs.seq <- 0;
            (* The hypervisor, not the guest, programs the NIC. *)
            (match dir with
            | Tx -> Cnic.set_tx_ring h.nic ~ctx:h.ctx ring
            | Rx -> Cnic.set_rx_ring h.nic ~ctx:h.ctx ring);
            (match t.protection, t.iommu with
            | Cdna_costs.Iommu, Some iommu ->
                List.iter
                  (fun pfn -> Memory.Iommu.grant iommu ~context:(iommu_ctx h) pfn)
                  pfns;
                h.granted_extra <- pfns @ h.granted_extra
            | _ -> ());
            k (Ok ())
      end)

let register_status t h ~addr k =
  let cost = t.costs.Cdna_costs.map_context in
  Xen.Hypervisor.hypercall t.xen ~from:h.guest ~cost (fun () ->
      if h.revoked then k (Error `Revoked)
      else begin
        ensure_resident t h;
        match
          if t.protection = Cdna_costs.Disabled then Ok ()
          else validate_pages t h [ Memory.Addr.pfn_of addr ]
        with
        | Error e -> k (Error e)
        | Ok () ->
            h.status_addr <- Some addr;
            Cnic.set_status_addr h.nic ~ctx:h.ctx addr;
            (match t.protection, t.iommu with
            | Cdna_costs.Iommu, Some iommu ->
                Memory.Iommu.grant iommu ~context:(iommu_ctx h)
                  (Memory.Addr.pfn_of addr);
                h.granted_extra <-
                  Memory.Addr.pfn_of addr :: h.granted_extra
            | _ -> ());
            k (Ok ())
      end)

(* Consumer index for a direction, as last written back by the NIC. *)
let consumer t h dir =
  match h.status_addr with
  | None -> 0
  | Some addr -> (
      match dir with
      | Tx -> Memory.Phys_mem.read_u32 (mem t) ~addr
      | Rx -> Memory.Phys_mem.read_u32 (mem t) ~addr:(addr + 4))

(* Lazily drop pins for descriptors the NIC has consumed (paper 3.3). *)
let process_completions t h dir =
  let rs = ring_state h dir in
  let cons = consumer t h dir in
  let unpinned = ref 0 in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt rs.pins with
    | Some (idx, pfns) when idx < cons ->
        ignore (Queue.pop rs.pins);
        List.iter
          (fun pfn ->
            incr unpinned;
            match t.protection with
            | Cdna_costs.Full -> Memory.Phys_mem.put_ref (mem t) pfn
            | Cdna_costs.Iommu -> (
                (* Paged-out contexts have no live grants to drop. *)
                if h.resident then
                  match t.iommu with
                  | Some iommu ->
                      Memory.Iommu.revoke iommu ~context:(iommu_ctx h) pfn
                  | None -> ())
            | Cdna_costs.Disabled -> ())
          pfns;
        rs.pinned <- rs.pinned - List.length pfns
    | Some _ | None -> continue := false
  done;
  !unpinned

let enqueue_cost t ~n_desc ~n_unpin =
  let c = t.costs in
  match t.protection with
  | Cdna_costs.Full ->
      Sim.Time.add c.Cdna_costs.hypercall_fixed
        (Sim.Time.add
           (Sim.Time.mul_int c.Cdna_costs.validate_per_desc n_desc)
           (Sim.Time.mul_int c.Cdna_costs.unpin_per_desc n_unpin))
  | Cdna_costs.Iommu ->
      Sim.Time.add c.Cdna_costs.hypercall_fixed
        (Sim.Time.mul_int c.Cdna_costs.iommu_per_desc (n_desc + n_unpin))
  | Cdna_costs.Disabled ->
      (* Direct ring writes by the guest; no hypervisor involvement. The
         small per-descriptor cost models the stores themselves. *)
      Sim.Time.mul_int (Sim.Time.ns 60) n_desc

(* Hypervisor-side cost of unpinning [n] descriptors' pages, over and
   above what a hypercall was already charged for. *)
let unpin_delta_cost t n =
  let c = t.costs in
  match t.protection with
  | Cdna_costs.Full -> Sim.Time.mul_int c.Cdna_costs.unpin_per_desc n
  | Cdna_costs.Iommu -> Sim.Time.mul_int c.Cdna_costs.iommu_per_desc n
  | Cdna_costs.Disabled -> Sim.Time.zero

let enqueue t h dir descs k =
  let n_desc = List.length descs in
  (* Estimate the unpin work for the up-front hypercall charge from the
     consumer index visible at call time. NIC status writebacks can land
     during the hypercall latency, so the body recomputes the real count
     and charges the difference. *)
  let n_unpin_est =
    if t.protection = Cdna_costs.Disabled then 0
    else begin
      let rs = ring_state h dir in
      let cons = consumer t h dir in
      Queue.fold
        (fun acc (idx, pfns) -> if idx < cons then acc + List.length pfns else acc)
        0 rs.pins
    end
  in
  let cost = enqueue_cost t ~n_desc ~n_unpin:n_unpin_est in
  let body () =
    t.enqueue_calls <- t.enqueue_calls + 1;
    if h.revoked then k (Error `Revoked)
    else begin
      let rs = ring_state h dir in
      match rs.ring with
      | None -> k (Error `Ring_unregistered)
      | Some ring ->
          let n_unpin = process_completions t h dir in
          if n_unpin > n_unpin_est then
            (* Writebacks completed more descriptors than the estimate
               saw; account the missed unpin work against the caller so
               the charged cost matches the work actually done. *)
            Xen.Hypervisor.hypercall t.xen ~from:h.guest
              ~cost:(unpin_delta_cost t (n_unpin - n_unpin_est))
              (fun () -> ());
          let cons = consumer t h dir in
          if rs.prod + n_desc - cons > Nic.Ring.slots ring then
            k (Error `Ring_full)
          else begin
            (* Validate the whole batch first: all-or-nothing. *)
            let validation =
              if t.protection = Cdna_costs.Disabled then Ok ()
              else
                List.fold_left
                  (fun acc (d : Memory.Dma_desc.t) ->
                    match acc with
                    | Error _ -> acc
                    | Ok () ->
                        validate_pages t h
                          (Memory.Addr.pages_spanned ~addr:d.addr ~len:d.len))
                  (Ok ()) descs
            in
            match validation with
            | Error e ->
                trace t (fun () ->
                    Printf.sprintf "enqueue rejected ctx=%d dom=%d" h.ctx
                      (Xen.Domain.id h.guest));
                k (Error e)
            | Ok () ->
                List.iter
                  (fun (d : Memory.Dma_desc.t) ->
                    let idx = rs.prod in
                    let pfns =
                      Memory.Addr.pages_spanned ~addr:d.addr ~len:d.len
                    in
                    (match t.protection with
                    | Cdna_costs.Full ->
                        List.iter (Memory.Phys_mem.get_ref (mem t)) pfns;
                        Queue.push (idx, pfns) rs.pins;
                        rs.pinned <- rs.pinned + List.length pfns
                    | Cdna_costs.Iommu ->
                        (* Grants for a paged-out context are deferred to
                           page-in, which re-grants every pin. *)
                        (match t.iommu with
                        | Some iommu when h.resident ->
                            List.iter
                              (fun pfn ->
                                Memory.Iommu.grant iommu
                                  ~context:(iommu_ctx h) pfn)
                              pfns
                        | Some _ | None -> ());
                        Queue.push (idx, pfns) rs.pins;
                        rs.pinned <- rs.pinned + List.length pfns
                    | Cdna_costs.Disabled -> ());
                    let stamped = { d with Memory.Dma_desc.seqno = rs.seq } in
                    rs.seq <- Seqno.next rs.seq;
                    Memory.Desc_layout.write
                      (Cnic.desc_layout h.nic)
                      (mem t)
                      ~at:(Nic.Ring.slot_addr ring idx)
                      stamped;
                    rs.prod <- idx + 1)
                  descs;
                k (Ok rs.prod)
          end
    end
  in
  match t.protection with
  | Cdna_costs.Disabled ->
      (* No hypercall: the work happens in the guest kernel. *)
      Xen.Hypervisor.kernel_work t.xen h.guest ~cost body
  | Cdna_costs.Full | Cdna_costs.Iommu ->
      Xen.Hypervisor.hypercall t.xen ~from:h.guest ~cost body

let pinned_pages h = h.tx.pinned + h.rx.pinned
let faults t = t.faults
let enqueue_calls t = t.enqueue_calls

let register_metrics t m =
  Sim.Metrics.gauge m "cdna.enqueue_calls" (fun () -> t.enqueue_calls);
  Sim.Metrics.gauge m "cdna.faults" (fun () -> List.length t.faults);
  (* Only present under oversubscription, so legacy (non-paging) metric
     snapshots are unchanged. *)
  if t.paging then
    Sim.Metrics.gauge m "cdna.ctx_swaps" (fun () -> t.ctx_swaps);
  (* NICs are numbered in registration order; the slot array is stable, so
     the gauges keep reading the live handle (or 0 after revocation). *)
  List.iteri
    (fun i (_, slots) ->
      let nic_label = ("nic", Printf.sprintf "cnic%d" i) in
      Array.iteri
        (fun ctx _ ->
          let labels = [ nic_label; ("ctx", string_of_int ctx) ] in
          Sim.Metrics.gauge m ~labels "cdna.ctx.pinned_pages" (fun () ->
              match slots.(ctx) with Some h -> pinned_pages h | None -> 0);
          Sim.Metrics.gauge m ~labels "cdna.ctx.virqs" (fun () ->
              match slots.(ctx) with
              | Some h -> virq_deliveries h
              | None -> 0))
        slots)
    (List.rev t.nics)
