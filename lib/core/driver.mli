(** CDNA guest device driver.

    The paravirtualized driver of paper section 3: it interacts with its
    private hardware context {e exactly} as a native driver would — rings,
    doorbell PIO writes into its mapped mailbox partition, interrupt-driven
    completion polling — except that descriptors are enqueued through the
    hypervisor's protected {!Hyp.enqueue} hypercall (which validates, pins
    and sequence-stamps them), batched per send/repost to amortize the
    hypercall cost. Under [Disabled] protection the same call degenerates
    to direct ring writes (Table 4); the driver code is identical, matching
    the paper's wrapper-function design for IOMMU systems.

    Initialization is asynchronous (ring registration hypercalls); the
    device reports zero transmit space until ready and fires the netdev
    writable hook when it comes up. *)

type t

val create :
  hyp:Hyp.t ->
  handle:Hyp.ctx_handle ->
  costs:Guestos.Os_costs.t ->
  ?tx_slots:int ->
  ?rx_slots:int ->
  ?materialize:bool ->
  unit ->
  t

(** The stack-facing device. *)
val netdev : t -> Guestos.Netdev.t

(** True once rings and buffers are registered and posted. *)
val ready : t -> bool

(** Virtual-interrupt entry (installed on the context's event channel at
    creation). *)
val handle_interrupt : t -> unit

(** [rebind t handle] re-targets the driver at a fresh context handle
    (after {!Hyp.migrate}): ring and buffer state is re-registered from
    scratch; frames still queued in the driver are transmitted on the new
    context, frames lost in flight on the old one are the transport's
    problem (as on any link flap). *)
val rebind : t -> Hyp.ctx_handle -> unit

(** [enable_auto_recovery t] arranges for the driver to recover from
    protection faults on its context without outside help: the
    hypervisor's fault report triggers {!Hyp.reassign} (bounded
    retry/backoff controlled by [max_retries]/[backoff]) and the driver
    rebinds to the fresh context. Recovery re-arms itself after each
    successful rebind. *)
val enable_auto_recovery :
  ?max_retries:int -> ?backoff:Sim.Time.t -> t -> unit

val tx_count : t -> int
val rx_count : t -> int
val polls : t -> int

(** Enqueue hypercalls rejected by the hypervisor (diagnostics). *)
val enqueue_errors : t -> int

(** Successful automatic fault recoveries (context reassign + rebind). *)
val recoveries : t -> int

(** The driver's current context handle (changes across rebinds). *)
val handle : t -> Hyp.ctx_handle
