(* CRC-32 (IEEE 802.3), slicing-by-8.

   [tables.(0)] is the classic byte-at-a-time table; tables 1-7 extend it
   so eight input bytes fold into the running CRC with eight table loads
   and no per-byte loop — mathematically identical to the byte-wise
   recurrence, just reassociated. The streaming primitives ([init_crc],
   [feed], [finish]) expose the same recurrence one byte at a time so
   payload specs can be checksummed without materializing.

   The tables are built eagerly at module initialization — which runs on
   the main domain, before any [Domain.spawn] — and are read-only
   afterwards, so LP callbacks on worker domains can share them without a
   racing [Lazy.force]. *)

let tables =
  let t0 =
    Array.init 256 (fun n ->
        let c = ref n in
        for _ = 0 to 7 do
          if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
          else c := !c lsr 1
        done;
        !c)
  in
  let tables = Array.make 8 t0 in
  for k = 1 to 7 do
    let prev = tables.(k - 1) in
    tables.(k) <-
      Array.init 256 (fun n ->
          let c = prev.(n) in
          t0.(c land 0xff) lxor (c lsr 8))
  done;
  tables

let init_crc = 0xFFFFFFFF

let[@cdna.hot] feed crc byte =
  let t0 = Array.unsafe_get tables 0 in
  Array.unsafe_get t0 ((crc lxor byte) land 0xff) lxor (crc lsr 8)

let[@cdna.hot] finish crc = crc lxor 0xFFFFFFFF

let[@cdna.hot] digest_stream fold = finish (fold feed init_crc)

let[@cdna.hot] digest_sub b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.digest_sub: bad bounds";
  let t0 = Array.unsafe_get tables 0
  and t1 = Array.unsafe_get tables 1
  and t2 = Array.unsafe_get tables 2
  and t3 = Array.unsafe_get tables 3
  and t4 = Array.unsafe_get tables 4
  and t5 = Array.unsafe_get tables 5
  and t6 = Array.unsafe_get tables 6
  and t7 = Array.unsafe_get tables 7 in
  let crc = ref init_crc in
  let i = ref pos in
  let stop8 = pos + (len land lnot 7) in
  while !i < stop8 do
    let i0 = !i in
    let c = !crc in
    let b0 = Char.code (Bytes.unsafe_get b i0)
    and b1 = Char.code (Bytes.unsafe_get b (i0 + 1))
    and b2 = Char.code (Bytes.unsafe_get b (i0 + 2))
    and b3 = Char.code (Bytes.unsafe_get b (i0 + 3))
    and b4 = Char.code (Bytes.unsafe_get b (i0 + 4))
    and b5 = Char.code (Bytes.unsafe_get b (i0 + 5))
    and b6 = Char.code (Bytes.unsafe_get b (i0 + 6))
    and b7 = Char.code (Bytes.unsafe_get b (i0 + 7)) in
    crc :=
      Array.unsafe_get t7 ((c lxor b0) land 0xff)
      lxor Array.unsafe_get t6 (((c lsr 8) lxor b1) land 0xff)
      lxor Array.unsafe_get t5 (((c lsr 16) lxor b2) land 0xff)
      lxor Array.unsafe_get t4 (((c lsr 24) lxor b3) land 0xff)
      lxor Array.unsafe_get t3 b4
      lxor Array.unsafe_get t2 b5
      lxor Array.unsafe_get t1 b6
      lxor Array.unsafe_get t0 b7;
    i := i0 + 8
  done;
  let stop = pos + len in
  while !i < stop do
    crc :=
      Array.unsafe_get t0 ((!crc lxor Char.code (Bytes.unsafe_get b !i)) land 0xff)
      lxor (!crc lsr 8);
    incr i
  done;
  finish !crc

let[@cdna.hot] digest b = digest_sub b ~pos:0 ~len:(Bytes.length b)
