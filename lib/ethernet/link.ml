type side = A | B

type direction = {
  mutable receiver : (Frame.t -> unit) option;
  (* Receiver sits at the destination side of this direction. *)
  mutable busy_until : Sim.Time.t;
  mutable frames : int;
  mutable bytes : int;
}

type verdict = [ `Pass | `Drop | `Corrupt ]

type t = {
  engine : Sim.Engine.t;
  rate_bps : int;
  propagation : Sim.Time.t;
  to_a : direction;
  to_b : direction;
  mutable tamper : (Frame.t -> verdict) option;
  mutable dropped : int;
  mutable corrupted : int;
}

let create engine ?(rate_bps = 1_000_000_000) ?(propagation = Sim.Time.ns 500) () =
  if rate_bps <= 0 then invalid_arg "Link.create: non-positive rate";
  let dir () = { receiver = None; busy_until = Sim.Time.zero; frames = 0; bytes = 0 } in
  {
    engine;
    rate_bps;
    propagation;
    to_a = dir ();
    to_b = dir ();
    tamper = None;
    dropped = 0;
    corrupted = 0;
  }

let rate_bps t = t.rate_bps

let attach t side f =
  match side with
  | A -> t.to_a.receiver <- Some f
  | B -> t.to_b.receiver <- Some f

let direction_from t = function A -> t.to_b | B -> t.to_a

let set_tamper t f = t.tamper <- f

(* A corrupted frame keeps its size and headers (so demux and timing are
   unchanged) but its payload no longer matches: the generator seed is
   perturbed, and any materialized bytes get one bit flipped, so both
   [Frame.data_valid] and [Frame.payload_crc] expose the damage. *)
let corrupt frame =
  let data =
    match frame.Frame.data with
    | None -> None
    | Some d ->
        let d = Bytes.copy d in
        if Bytes.length d > 0 then
          Bytes.set d 0 (Char.chr (Char.code (Bytes.get d 0) lxor 0x01));
        Some d
  in
  { frame with Frame.payload_seed = frame.Frame.payload_seed lxor 0x5a5a; data }

let send t ~from frame ~on_wire_free =
  let dir = direction_from t from in
  let now = Sim.Engine.now t.engine in
  let start = Sim.Time.max now dir.busy_until in
  let ser = Sim.Time.bits_time ~bits:(Frame.wire_bits frame) ~rate_bps:t.rate_bps in
  let wire_free = Sim.Time.add start ser in
  dir.busy_until <- wire_free;
  ignore (Sim.Engine.schedule_at t.engine wire_free on_wire_free);
  (* Tampering happens "on the wire": the frame still serializes (the
     sender paid the wire time either way), only delivery changes. *)
  let verdict =
    match t.tamper with None -> `Pass | Some f -> f frame
  in
  match verdict with
  | `Drop -> t.dropped <- t.dropped + 1
  | (`Pass | `Corrupt) as v ->
      let frame =
        match v with
        | `Corrupt ->
            t.corrupted <- t.corrupted + 1;
            corrupt frame
        | `Pass -> frame
      in
      let arrival = Sim.Time.add wire_free t.propagation in
      ignore
        (Sim.Engine.schedule_at t.engine arrival (fun () ->
             dir.frames <- dir.frames + 1;
             dir.bytes <- dir.bytes + frame.Frame.payload_len;
             match dir.receiver with Some f -> f frame | None -> ()))

let busy t ~from =
  let dir = direction_from t from in
  Sim.Time.compare (Sim.Engine.now t.engine) dir.busy_until < 0

let delivered t side =
  let dir = match side with A -> t.to_a | B -> t.to_b in
  (dir.frames, dir.bytes)

let dropped t = t.dropped
let corrupted t = t.corrupted
