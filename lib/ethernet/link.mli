(** Full-duplex point-to-point Ethernet link.

    Each direction serializes frames at the link rate (including preamble
    and inter-frame gap) and delivers them after the propagation delay.
    Senders are paced by the [on_wire_free] callback: the next frame should
    be handed to the link when the previous one has left the transmitter,
    which is how the NIC models its MAC. The link itself never queues more
    than the frame being serialized plus those the sender chose to push —
    pushed frames queue FIFO. *)

type t

type side = A | B

val create :
  Sim.Engine.t ->
  ?rate_bps:int ->
  (* default 1 Gb/s *)
  ?propagation:Sim.Time.t ->
  (* default 500 ns *)
  unit ->
  t

val rate_bps : t -> int

(** [attach t side f] sets the receive handler for frames arriving {e at}
    [side]. *)
val attach : t -> side -> (Frame.t -> unit) -> unit

(** [send t ~from frame ~on_wire_free] transmits [frame] from side [from].
    [on_wire_free] fires when the frame has fully left the transmitter
    (serialization done), i.e. when the next frame could start. Delivery to
    the other side happens one propagation delay later. *)
val send : t -> from:side -> Frame.t -> on_wire_free:(unit -> unit) -> unit

(** True when the given direction is currently serializing a frame. *)
val busy : t -> from:side -> bool

(** Frames and payload bytes delivered toward the given side. *)
val delivered : t -> side -> int * int

(** {1 Fault injection} *)

type verdict = [ `Pass | `Drop | `Corrupt ]

(** [set_tamper t (Some f)] consults [f] for every frame handed to
    {!send}. The frame always serializes (the sender pays wire time
    either way); [`Drop] suppresses delivery, [`Corrupt] delivers a
    same-size frame whose payload fails [Frame.data_valid] /
    [Frame.payload_crc]. Typically [f] forwards to
    [Sim.Fault_inject.fire]. *)
val set_tamper : t -> (Frame.t -> verdict) option -> unit

(** Frames suppressed / corrupted by the tamper hook. *)
val dropped : t -> int

val corrupted : t -> int
