type kind = Data | Ack of int

type t = {
  src : Mac_addr.t;
  dst : Mac_addr.t;
  kind : kind;
  flow : int;
  seq : int;
  segments : int;
  payload_len : int;
  payload_seed : int;
  data : Bytes.t option;
}

let jumbo_limit = 9000

let make ~src ~dst ~kind ~flow ~seq ?(segments = 1) ~payload_len ~payload_seed
    () =
  if segments < 1 then invalid_arg "Frame.make: segments must be positive";
  if payload_len < 0 || payload_len > segments * jumbo_limit then
    invalid_arg "Frame.make: payload length out of range";
  { src; dst; kind; flow; seq; segments; payload_len; payload_seed; data = None }

(* xorshift-style byte stream; cheap and deterministic. All payload
   accessors below walk this one recurrence so the materialized, folded
   and blitted views of a spec are bytewise identical. *)
let[@inline] next_state s =
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  s lxor (s lsl 17)

let fold_payload ~seed ~len f init =
  let state = ref (seed lor 1) in
  let acc = ref init in
  for _ = 1 to len do
    state := next_state !state;
    acc := f !acc (!state land 0xff)
  done;
  !acc

let blit_payload ~seed ~len dst ~pos =
  if pos < 0 || len < 0 || len > Bytes.length dst - pos then
    invalid_arg "Frame.blit_payload: bad bounds";
  let state = ref (seed lor 1) in
  for i = 0 to len - 1 do
    state := next_state !state;
    Bytes.unsafe_set dst (pos + i) (Char.unsafe_chr (!state land 0xff))
  done

let materialize_payload ~seed ~len =
  let b = Bytes.create len in
  blit_payload ~seed ~len b ~pos:0;
  b

let with_data t =
  { t with data = Some (materialize_payload ~seed:t.payload_seed ~len:t.payload_len) }

let data_valid t =
  match t.data with
  | None -> true
  | Some d ->
      Bytes.length d = t.payload_len
      && begin
           (* Compare against the spec stream in place: no 1500 B scratch
              per verified packet. *)
           let state = ref (t.payload_seed lor 1) in
           let ok = ref true in
           let i = ref 0 in
           while !ok && !i < t.payload_len do
             state := next_state !state;
             if Char.code (Bytes.unsafe_get d !i) <> !state land 0xff then
               ok := false;
             incr i
           done;
           !ok
         end

let payload_crc t =
  Crc32.digest_stream (fold_payload ~seed:t.payload_seed ~len:t.payload_len)

let overhead_bytes = 18
let min_payload = 46

let wire_bytes t =
  (overhead_bytes * t.segments) + max min_payload t.payload_len

(* Preamble+SFD (8) and inter-frame gap (12) occupy the wire as well,
   once per segment. *)
let wire_bits t = (wire_bytes t + (20 * t.segments)) * 8

let pp ppf t =
  let kind =
    match t.kind with Data -> "data" | Ack n -> Printf.sprintf "ack(%d)" n
  in
  Format.fprintf ppf "%a->%a %s flow=%d seq=%d len=%d" Mac_addr.pp t.src
    Mac_addr.pp t.dst kind t.flow t.seq t.payload_len
