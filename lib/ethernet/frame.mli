(** Ethernet frames.

    A frame carries addressing, flow bookkeeping for the closed-loop
    workload, and a {e payload specification}: a [(seed, length)] pair that
    deterministically defines every payload byte. The simulator can run in
    two modes:

    - {b materialized}: [data] holds the actual bytes, which are DMAed
      through simulated memory and verified with CRC-32 at the sink
      (integrity tests, protection-fault demos);
    - {b spec-only}: only the spec travels (fast mode for long benchmark
      runs); sizes and timing are identical.

    Wire accounting includes the 14-byte header, 4-byte FCS, and the
    preamble + inter-frame gap (20 bytes) for line-rate computations, so a
    "1 Gb/s" link saturates at the true ~941 Mb/s of TCP-sized payload
    goodput... or rather, at exactly the payload rate real Ethernet
    achieves for the configured payload size. *)

type kind =
  | Data  (** Workload payload frame. *)
  | Ack of int  (** Acknowledgement covering [n] payload frames. *)

type t = {
  src : Mac_addr.t;
  dst : Mac_addr.t;
  kind : kind;
  flow : int;  (** Workload connection id. *)
  seq : int;  (** Per-flow sequence number (first segment's). *)
  segments : int;
      (** TSO/GSO super-frames: logical MTU-sized segments this frame
          carries. The NIC serializes them back-to-back on the wire; CPU
          layers handle the super-frame as one unit — that amortization is
          exactly what TCP segmentation offload buys. 1 = ordinary frame. *)
  payload_len : int;  (** Total payload bytes (excluding headers/FCS). *)
  payload_seed : int;  (** Seed defining payload contents. *)
  data : Bytes.t option;  (** Materialized payload, if enabled. *)
}

(** [make ~src ~dst ~kind ~flow ~seq ~payload_len ~payload_seed ()] builds
    a spec-only frame. @raise Invalid_argument if [payload_len < 0] or
    larger than [segments] * 9000, or [segments < 1]. *)
val make :
  src:Mac_addr.t ->
  dst:Mac_addr.t ->
  kind:kind ->
  flow:int ->
  seq:int ->
  ?segments:int ->
  payload_len:int ->
  payload_seed:int ->
  unit ->
  t

(** Deterministic payload bytes for a spec. *)
val materialize_payload : seed:int -> len:int -> Bytes.t

(** [fold_payload ~seed ~len f init] folds [f] over the spec's byte stream
    without materializing it — same bytes as {!materialize_payload}. *)
val fold_payload : seed:int -> len:int -> ('a -> int -> 'a) -> 'a -> 'a

(** [blit_payload ~seed ~len dst ~pos] writes the spec's bytes into a
    caller-owned buffer (the non-allocating datapath variant of
    {!materialize_payload}). @raise Invalid_argument on bad bounds. *)
val blit_payload : seed:int -> len:int -> Bytes.t -> pos:int -> unit

(** [with_data f] attaches the materialized payload. *)
val with_data : t -> t

(** [data_valid f] checks [f.data] against the spec (true for spec-only
    frames: nothing to contradict). *)
val data_valid : t -> bool

(** Expected CRC-32 of the payload spec. *)
val payload_crc : t -> int

(** {1 Wire accounting} *)

(** Header (14) + FCS (4). *)
val overhead_bytes : int

(** Frame bytes on the wire: per-segment headers + max(payload, 46)
    padded minimum. *)
val wire_bytes : t -> int

(** Bits occupying the link including preamble (8 B) and IFG (12 B) per
    segment. *)
val wire_bits : t -> int

val pp : Format.formatter -> t -> unit
