(* Flat physical memory.

   One contiguous [Bytes.t] backs the whole address space; page metadata
   lives in a [Page.t array] indexed by pfn. The backing is allocated
   uninitialized (the OS commits pages lazily), so a page must be zeroed
   on first touch: the [materialized] bitmap records which pages have
   been, and doubles as the [materialized_pages] accounting the old
   hashtable gave for free. Reclaiming a page clears its bit, so a
   reallocated frame zero-fills again on next access and never leaks the
   previous owner's bytes.

   The datapath accessors ([read_into], [write_sub], the fixed-width
   uints) validate the range once at the API edge and then index the
   flat store with [Bytes.unsafe_get]/[unsafe_set] — no intermediate
   allocation, no per-page hashtable lookups. *)

type t = {
  total_pages : int;
  total_bytes : int;
  data : Bytes.t;
  pages : Page.t array;
  materialized : Bytes.t; (* 1 bit per page *)
  mutable materialized_count : int;
  mutable free_list : Addr.pfn list;
  mutable free_count : int;
}

let create ~total_pages () =
  if total_pages <= 0 then invalid_arg "Phys_mem.create: no pages";
  let rec build p acc = if p < 0 then acc else build (p - 1) (p :: acc) in
  {
    total_pages;
    total_bytes = total_pages * Addr.page_size;
    data = Bytes.create (total_pages * Addr.page_size);
    pages = Array.init total_pages (fun pfn -> Page.create ~pfn);
    materialized = Bytes.make ((total_pages + 7) / 8) '\000';
    materialized_count = 0;
    free_list = build (total_pages - 1) [];
    free_count = total_pages;
  }

let total_pages t = t.total_pages
let free_pages t = t.free_count
let[@cdna.hot] materialized_pages t = t.materialized_count

let[@cdna.hot] is_materialized t pfn =
  Char.code (Bytes.unsafe_get t.materialized (pfn lsr 3))
  land (1 lsl (pfn land 7))
  <> 0

let[@cdna.hot] materialize t pfn =
  if not (is_materialized t pfn) then begin
    Bytes.unsafe_set t.materialized (pfn lsr 3)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get t.materialized (pfn lsr 3))
         lor (1 lsl (pfn land 7))));
    t.materialized_count <- t.materialized_count + 1;
    Bytes.fill t.data (pfn lsl Addr.page_shift) Addr.page_size '\000'
  end

let dematerialize t pfn =
  if is_materialized t pfn then begin
    Bytes.unsafe_set t.materialized (pfn lsr 3)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get t.materialized (pfn lsr 3))
         land lnot (1 lsl (pfn land 7))));
    t.materialized_count <- t.materialized_count - 1
  end

(* Zero-fill-on-first-touch for every page the range overlaps. Called
   after the range has been validated. *)
let[@cdna.hot] touch_range t ~addr ~len =
  if len > 0 then begin
    let first = addr lsr Addr.page_shift in
    let last = (addr + len - 1) lsr Addr.page_shift in
    for pfn = first to last do
      materialize t pfn
    done
  end

let[@cdna.hot] page t pfn =
  if pfn < 0 || pfn >= t.total_pages then
    invalid_arg "Phys_mem.page: pfn out of range";
  Array.unsafe_get t.pages pfn

let alloc t ~owner ~count =
  if count < 0 then invalid_arg "Phys_mem.alloc: negative count";
  if count > t.free_count then Error `Out_of_memory
  else begin
    let rec take n l acc =
      if n = 0 then (List.rev acc, l)
      else
        match l with
        | [] -> (List.rev acc, []) (* unreachable: free_count guards *)
        | p :: rest -> take (n - 1) rest (p :: acc)
    in
    let taken, rest = take count t.free_list [] in
    t.free_list <- rest;
    t.free_count <- t.free_count - count;
    List.iter (fun pfn -> Page.set_owned (page t pfn) owner) taken;
    Ok taken
  end

let reclaim t pfn =
  t.free_list <- pfn :: t.free_list;
  t.free_count <- t.free_count + 1;
  (* Freshly reallocated pages must not leak previous contents: clearing
     the bit makes the next touch zero-fill the frame again. *)
  dematerialize t pfn

let free t pfn =
  let p = page t pfn in
  Page.release p;
  match Page.state p with
  | Free -> reclaim t pfn
  | Quarantined _ -> ()
  | Owned _ -> assert false

let transfer t pfn ~to_ = Page.transfer (page t pfn) to_
let get_ref t pfn = Page.get_ref (page t pfn)

let put_ref t pfn =
  match Page.put_ref (page t pfn) with
  | `Now_free -> reclaim t pfn
  | `Still_held -> ()

let owned_by t pfn dom =
  pfn >= 0 && pfn < t.total_pages && Page.is_owned_by (page t pfn) dom

let[@cdna.hot] valid_range t ~addr ~len =
  len >= 0 && addr >= 0 && len <= t.total_bytes && addr <= t.total_bytes - len

let[@cdna.hot] check_range t ~addr ~len =
  if len < 0 then invalid_arg "Phys_mem: negative length";
  if addr < 0 || len > t.total_bytes || addr > t.total_bytes - len then
    invalid_arg "Phys_mem: address range out of bounds"

let[@cdna.hot] read_into t ~addr ~len dst ~pos =
  check_range t ~addr ~len;
  if pos < 0 || pos + len > Bytes.length dst then
    invalid_arg "Phys_mem.read_into: destination range out of bounds";
  touch_range t ~addr ~len;
  Bytes.blit t.data addr dst pos len

let[@cdna.hot] write_sub t ~addr src ~pos ~len =
  check_range t ~addr ~len;
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg "Phys_mem.write_sub: source range out of bounds";
  touch_range t ~addr ~len;
  Bytes.blit src pos t.data addr len

let read t ~addr ~len =
  check_range t ~addr ~len;
  touch_range t ~addr ~len;
  Bytes.sub t.data addr len

let[@cdna.hot] write t ~addr data = write_sub t ~addr data ~pos:0 ~len:(Bytes.length data)

(* Fixed-width little-endian accessors: one validated range check, then
   direct flat-store indexing — no intermediate buffers. *)

let[@cdna.hot] read_uint t ~addr ~bytes =
  check_range t ~addr ~len:bytes;
  touch_range t ~addr ~len:bytes;
  let d = t.data in
  let rec build i acc =
    if i < 0 then acc
    else build (i - 1) ((acc lsl 8) lor Char.code (Bytes.unsafe_get d (addr + i)))
  in
  build (bytes - 1) 0

let[@cdna.hot] write_uint t ~addr ~bytes v =
  check_range t ~addr ~len:bytes;
  touch_range t ~addr ~len:bytes;
  let d = t.data in
  for i = 0 to bytes - 1 do
    Bytes.unsafe_set d (addr + i) (Char.unsafe_chr ((v lsr (8 * i)) land 0xff))
  done

let[@cdna.hot] read_u16 t ~addr =
  check_range t ~addr ~len:2;
  touch_range t ~addr ~len:2;
  let d = t.data in
  Char.code (Bytes.unsafe_get d addr)
  lor (Char.code (Bytes.unsafe_get d (addr + 1)) lsl 8)

let[@cdna.hot] write_u16 t ~addr v =
  check_range t ~addr ~len:2;
  touch_range t ~addr ~len:2;
  let d = t.data in
  Bytes.unsafe_set d addr (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set d (addr + 1) (Char.unsafe_chr ((v lsr 8) land 0xff))

let[@cdna.hot] read_u32 t ~addr =
  check_range t ~addr ~len:4;
  touch_range t ~addr ~len:4;
  let d = t.data in
  Char.code (Bytes.unsafe_get d addr)
  lor (Char.code (Bytes.unsafe_get d (addr + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get d (addr + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get d (addr + 3)) lsl 24)

let[@cdna.hot] write_u32 t ~addr v =
  check_range t ~addr ~len:4;
  touch_range t ~addr ~len:4;
  let d = t.data in
  Bytes.unsafe_set d addr (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set d (addr + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set d (addr + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set d (addr + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))

let[@cdna.hot] read_u64 t ~addr =
  check_range t ~addr ~len:8;
  touch_range t ~addr ~len:8;
  let d = t.data in
  let lo =
    Char.code (Bytes.unsafe_get d addr)
    lor (Char.code (Bytes.unsafe_get d (addr + 1)) lsl 8)
    lor (Char.code (Bytes.unsafe_get d (addr + 2)) lsl 16)
    lor (Char.code (Bytes.unsafe_get d (addr + 3)) lsl 24)
  in
  let hi =
    Char.code (Bytes.unsafe_get d (addr + 4))
    lor (Char.code (Bytes.unsafe_get d (addr + 5)) lsl 8)
    lor (Char.code (Bytes.unsafe_get d (addr + 6)) lsl 16)
    lor (Char.code (Bytes.unsafe_get d (addr + 7)) lsl 24)
  in
  lo lor (hi lsl 32)

let[@cdna.hot] write_u64 t ~addr v =
  check_range t ~addr ~len:8;
  touch_range t ~addr ~len:8;
  let d = t.data in
  Bytes.unsafe_set d addr (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set d (addr + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set d (addr + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set d (addr + 3) (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set d (addr + 4) (Char.unsafe_chr ((v lsr 32) land 0xff));
  Bytes.unsafe_set d (addr + 5) (Char.unsafe_chr ((v lsr 40) land 0xff));
  Bytes.unsafe_set d (addr + 6) (Char.unsafe_chr ((v lsr 48) land 0xff));
  Bytes.unsafe_set d (addr + 7) (Char.unsafe_chr ((v lsr 56) land 0xff))
