type t = {
  size : int;
  addr_off : int;
  addr_bytes : int;
  len_off : int;
  len_bytes : int;
  flags_off : int;
  seqno_off : int;
}

let default =
  {
    size = 16;
    addr_off = 0;
    addr_bytes = 8;
    len_off = 8;
    len_bytes = 4;
    flags_off = 12;
    seqno_off = 14;
  }

let compact =
  {
    size = 12;
    addr_off = 0;
    addr_bytes = 4;
    len_off = 4;
    len_bytes = 2;
    flags_off = 8;
    seqno_off = 10;
  }

let fields t =
  [
    ("addr", t.addr_off, t.addr_bytes);
    ("len", t.len_off, t.len_bytes);
    ("flags", t.flags_off, 2);
    ("seqno", t.seqno_off, 2);
  ]

let validate t =
  let rec check = function
    | [] -> Ok ()
    | (name, off, bytes) :: rest ->
        if off < 0 || off + bytes > t.size then
          Error (Printf.sprintf "%s field [%d, %d) outside descriptor size %d" name off (off + bytes) t.size)
        else begin
          let overlap =
            List.find_opt
              (fun (name2, off2, bytes2) ->
                name <> name2 && off < off2 + bytes2 && off2 < off + bytes)
              (fields t)
          in
          match overlap with
          | Some (name2, _, _) ->
              Error (Printf.sprintf "%s overlaps %s" name name2)
          | None -> check rest
        end
  in
  if t.size <= 0 then Error "non-positive size"
  else if t.addr_bytes < 4 || t.addr_bytes > 8 then
    Error "addr_bytes must be in [4, 8]"
  else if t.len_bytes <> 2 && t.len_bytes <> 4 then
    Error "len_bytes must be 2 or 4"
  else check (fields t)

let uint_write mem ~addr ~bytes v = Phys_mem.write_uint mem ~addr ~bytes v
let uint_read mem ~addr ~bytes = Phys_mem.read_uint mem ~addr ~bytes

let field_max bytes = if bytes >= 8 then max_int else (1 lsl (8 * bytes)) - 1
let max_addr t = field_max t.addr_bytes
let max_len t = field_max t.len_bytes

let write t mem ~at (d : Dma_desc.t) =
  if d.Dma_desc.addr < 0 || d.Dma_desc.addr > max_addr t then
    invalid_arg "Desc_layout.write: address does not fit layout";
  if d.Dma_desc.len < 0 || d.Dma_desc.len > max_len t then
    invalid_arg "Desc_layout.write: length does not fit layout";
  if d.Dma_desc.flags < 0 || d.Dma_desc.flags > 0xFFFF then
    invalid_arg "Desc_layout.write: flags out of range";
  if d.Dma_desc.seqno < 0 || d.Dma_desc.seqno > 0xFFFF then
    invalid_arg "Desc_layout.write: seqno out of range";
  uint_write mem ~addr:(at + t.addr_off) ~bytes:t.addr_bytes d.Dma_desc.addr;
  uint_write mem ~addr:(at + t.len_off) ~bytes:t.len_bytes d.Dma_desc.len;
  uint_write mem ~addr:(at + t.flags_off) ~bytes:2 d.Dma_desc.flags;
  uint_write mem ~addr:(at + t.seqno_off) ~bytes:2 d.Dma_desc.seqno

let read t mem ~at =
  {
    Dma_desc.addr = uint_read mem ~addr:(at + t.addr_off) ~bytes:t.addr_bytes;
    len = uint_read mem ~addr:(at + t.len_off) ~bytes:t.len_bytes;
    flags = uint_read mem ~addr:(at + t.flags_off) ~bytes:2;
    seqno = uint_read mem ~addr:(at + t.seqno_off) ~bytes:2;
  }

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf
    "{size=%d addr@%d:%d len@%d:%d flags@%d seqno@%d}" t.size t.addr_off
    t.addr_bytes t.len_off t.len_bytes t.flags_off t.seqno_off
