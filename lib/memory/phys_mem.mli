(** Simulated host physical memory.

    A flat physical address space of 4 KB pages with per-page ownership and
    reference counting ({!Page}), a free-list allocator, and real byte
    contents. The backing store is one contiguous [Bytes.t]; page contents
    are still materialized (zero-filled) lazily on first touch — guests in
    the experiments only touch network-buffer pages, so a 4 GB machine
    commits only what is actually written.

    DMA in the simulator goes through {!read}/{!write} (or the
    non-allocating {!read_into}/{!write_sub} used by the datapath), so a
    protection bug (or a deliberately disabled protection mode, as in the
    paper's Table 4 experiment) corrupts real simulated memory that tests
    can observe. *)

type t

(** [create ~total_pages ()] builds a memory of [total_pages] 4 KB pages,
    all initially free. *)
val create : total_pages:int -> unit -> t

val total_pages : t -> int
val free_pages : t -> int

(** Page metadata. @raise Invalid_argument if [pfn] is out of range. *)
val page : t -> Addr.pfn -> Page.t

(** {1 Allocation} *)

(** [alloc t ~owner ~count] takes [count] free pages for domain [owner].
    Returns [Error `Out_of_memory] (allocating nothing) if not enough
    pages are free. *)
val alloc : t -> owner:Page.domain_id -> count:int -> (Addr.pfn list, [ `Out_of_memory ]) result

(** [free t pfn] releases a page back to the allocator. If the page has
    outstanding references (pinned by DMA), it is quarantined and returns
    to the free list only when the last reference is dropped.
    @raise Invalid_argument if the page is not owned. *)
val free : t -> Addr.pfn -> unit

(** [transfer t pfn ~to_] flips ownership of an owned, unreferenced page
    to another domain without passing through the free list.
    @raise Invalid_argument if the page is not owned. *)
val transfer : t -> Addr.pfn -> to_:Page.domain_id -> (unit, [ `Pinned ]) result

(** {1 Reference counting (DMA pinning)} *)

(** @raise Invalid_argument if the page is free. *)
val get_ref : t -> Addr.pfn -> unit

(** Decrement; reclaims quarantined pages that drop to zero. *)
val put_ref : t -> Addr.pfn -> unit

(** [owned_by t pfn dom] is true iff [pfn] is currently owned by [dom]. *)
val owned_by : t -> Addr.pfn -> Page.domain_id -> bool

(** {1 Byte access}

    Ranges may span pages. @raise Invalid_argument on out-of-range
    accesses or negative lengths. *)

(** [valid_range t ~addr ~len] is true iff [\[addr, addr+len)] lies
    entirely inside physical memory (and [len >= 0]). The one bounds
    predicate shared by {!check_range}-style validation here and the DMA
    engine's admission check, so the two cannot drift. *)
val valid_range : t -> addr:Addr.t -> len:int -> bool

val read : t -> addr:Addr.t -> len:int -> Bytes.t
val write : t -> addr:Addr.t -> Bytes.t -> unit

(** [read_into t ~addr ~len dst ~pos] copies [len] bytes starting at
    physical [addr] into [dst] at [pos] without allocating.
    @raise Invalid_argument if either range is out of bounds. *)
val read_into : t -> addr:Addr.t -> len:int -> Bytes.t -> pos:int -> unit

(** [write_sub t ~addr src ~pos ~len] writes [src[pos, pos+len)] to
    physical [addr] without allocating.
    @raise Invalid_argument if either range is out of bounds. *)
val write_sub : t -> addr:Addr.t -> Bytes.t -> pos:int -> len:int -> unit

(** Fixed-width little-endian accessors used by descriptor rings. All of
    them index the flat backing store directly — one validated range
    check, no intermediate buffer. *)

(** Variable-width little-endian accessors ([bytes] in [1, 8]), for
    descriptor layouts with non-standard field widths. *)

val read_uint : t -> addr:Addr.t -> bytes:int -> int
val write_uint : t -> addr:Addr.t -> bytes:int -> int -> unit

val read_u16 : t -> addr:Addr.t -> int
val write_u16 : t -> addr:Addr.t -> int -> unit
val read_u32 : t -> addr:Addr.t -> int
val write_u32 : t -> addr:Addr.t -> int -> unit
val read_u64 : t -> addr:Addr.t -> int
val write_u64 : t -> addr:Addr.t -> int -> unit

(** Number of pages whose contents have been materialized (for tests). *)
val materialized_pages : t -> int
