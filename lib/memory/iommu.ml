type context_id = int

(* Entries are keyed by [(context lsl pfn_bits) lor pfn] packed into a
   single immediate int: the permission check on every DMA transfer then
   hashes and compares an unboxed int instead of allocating a tuple and
   running the polymorphic hash over it. 32 bits of pfn covers 2^32 pages
   (far beyond any simulated machine); contexts use the remaining bits. *)
let pfn_bits = 32
let pfn_mask = (1 lsl pfn_bits) - 1

let pack ~context pfn =
  if pfn < 0 || pfn > pfn_mask then invalid_arg "Iommu: pfn out of range";
  if context < 0 then invalid_arg "Iommu: negative context";
  (context lsl pfn_bits) lor pfn

let context_of_key key = key lsr pfn_bits

type t = { table : (int, unit) Hashtbl.t }

let create () = { table = Hashtbl.create 1024 }

let grant t ~context pfn =
  let key = pack ~context pfn in
  if not (Hashtbl.mem t.table key) then Hashtbl.add t.table key ()

let revoke t ~context pfn = Hashtbl.remove t.table (pack ~context pfn)

let revoke_context t ~context =
  let doomed =
    Hashtbl.fold
      (fun key () acc ->
        if Int.equal (context_of_key key) context then key :: acc else acc)
      t.table []
    |> List.sort Int.compare
  in
  List.iter (Hashtbl.remove t.table) doomed

let[@cdna.hot] allowed t ~context pfn =
  Hashtbl.mem t.table ((context lsl pfn_bits) lor pfn)

let entries t = Hashtbl.length t.table
