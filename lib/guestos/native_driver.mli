(** Native (unvirtualized) NIC driver.

    The driver used by the bare-metal baseline and, unmodified, by the Xen
    driver domain (paper section 2.2): it owns its descriptor rings in its
    domain's memory, writes DMA descriptors directly, rings doorbells via
    PIO, and processes completions from interrupts with NAPI-style
    batching. The NIC is fully trusted with the physical addresses it is
    given — the trust relationship the CDNA design replaces for guests.

    Per ring slot the driver owns one page of buffer memory; payload bytes
    are really written to (tx) and read from (rx) those pages when the NIC
    materializes payloads. *)

type t

(** Misbehaviors for the malicious-driver mode (see {!set_malice}): the
    descriptor classes a buggy or hostile guest driver could hand an
    unprotected NIC — exactly the attacks CDNA's hypervisor validation,
    sequence numbers and IOMMU are meant to catch (paper sections 3.3 and
    5.3). *)
type malice =
  | Out_of_sequence  (** Forged (skipped-ahead) descriptor sequence number. *)
  | Foreign_page of Memory.Addr.pfn
      (** Transmit descriptor pointing at a page this driver does not own. *)
  | Over_length
      (** Descriptor length running several pages past the buffer. *)

(** [create ~mem ~post_kernel ~costs ~hw ~mac ~alloc_pages ()] builds the
    driver and initializes the hardware: allocates ring/buffer/status
    pages from its domain (via [alloc_pages]), programs the rings, posts
    all receive buffers.

    [tx_slots]/[rx_slots] (default 256) must be powers of two and at most
    256 so each ring fits one page. [materialize] controls whether payload
    bytes are staged in buffers.

    [sg_split] enables scatter/gather transmit (on in the paper's testbed
    configuration): packets longer than the split are described by two
    descriptors — a header fragment of [sg_split] bytes and the rest —
    which the NIC coalesces at the end-of-packet flag. *)
val create :
  mem:Memory.Phys_mem.t ->
  post_kernel:(cost:Sim.Time.t -> (unit -> unit) -> unit) ->
  costs:Os_costs.t ->
  hw:Nic.Driver_if.t ->
  mac:Ethernet.Mac_addr.t ->
  alloc_pages:(int -> Memory.Addr.pfn list) ->
  ?tx_slots:int ->
  ?rx_slots:int ->
  ?materialize:bool ->
  ?sg_split:int ->
  unit ->
  t

(** The stack-facing device. *)
val netdev : t -> Netdev.t

(** Entry point for the (virtual or physical) interrupt: schedules a poll
    if one is not already pending. Safe to call from any context. *)
val handle_interrupt : t -> unit

(** Frames fully transmitted / received so far. *)
val tx_count : t -> int

val rx_count : t -> int

(** Number of polls executed (diagnostic; relates interrupt rate to
    batching). *)
val polls : t -> int

(** [set_malice t ?every (Some kind)] corrupts the end-of-packet transmit
    descriptor of every [every]th packet (default every packet) with the
    given misbehavior; [None] restores honesty. Only the ring image is
    affected — the driver's own bookkeeping still believes the honest
    descriptor, as a compromised driver's stack would. *)
val set_malice : t -> ?every:int -> malice option -> unit

(** Corrupted descriptors emitted so far. *)
val malicious_descs : t -> int
