type malice =
  | Out_of_sequence
  | Foreign_page of Memory.Addr.pfn
  | Over_length

type t = {
  mem : Memory.Phys_mem.t;
  post_kernel : cost:Sim.Time.t -> (unit -> unit) -> unit;
  costs : Os_costs.t;
  hw : Nic.Driver_if.t;
  materialize : bool;
  sg_split : int option;
  tx_slots : int;
  rx_slots : int;
  tx_ring : Nic.Ring.t;
  rx_ring : Nic.Ring.t;
  tx_pages : Memory.Addr.pfn array;
  rx_pages : Memory.Addr.pfn array;
  mutable tx_prod : int;
  mutable tx_cons_seen : int;
  mutable rx_prod : int;
  pending : Ethernet.Frame.t Queue.t;
  (* Reused staging buffer for generating spec-only payloads into DMA
     pages; [Phys_mem.write_sub] copies synchronously. *)
  mutable scratch : Bytes.t;
  mutable was_full : bool;
  mutable poll_scheduled : bool;
  mutable netdev : Netdev.t option;
  mutable tx_count : int;
  mutable rx_count : int;
  mutable polls : int;
  mutable malice : (malice * int) option; (* kind, every nth packet *)
  mutable malice_seen : int;
  mutable malicious_descs : int;
}

let page_addr pfn = Memory.Addr.base_of_pfn pfn

let check_slots name n =
  if n < 2 || n > 256 || n land (n - 1) <> 0 then
    invalid_arg (name ^ ": slots must be a power of two in [2, 256]")

let tx_in_flight t = t.tx_prod - t.tx_cons_seen
let ring_space t = t.tx_slots - tx_in_flight t
let tx_space t = max 0 (ring_space t - Queue.length t.pending)
let the_netdev t = Option.get t.netdev

(* Descriptors a packet occupies under the configured scatter/gather
   policy. *)
let descs_per_packet t frame =
  match t.sg_split with
  | Some split when frame.Ethernet.Frame.payload_len > split -> 2
  | Some _ | None -> 1

let write_tx_descriptor t frame =
  let pfn = t.tx_pages.(t.tx_prod land (t.tx_slots - 1)) in
  let len = frame.Ethernet.Frame.payload_len in
  if t.materialize then begin
    let addr = page_addr pfn in
    match frame.Ethernet.Frame.data with
    | Some d ->
        (Memory.Phys_mem.write t.mem ~addr d
        [@cdna.protection_ok
          "native (non-virtualized) baseline: the OS owns all memory and \
           writes its own DMA buffers directly"])
    | None ->
        if Bytes.length t.scratch < len then
          t.scratch <- Bytes.create (max len 2048);
        Ethernet.Frame.blit_payload ~seed:frame.Ethernet.Frame.payload_seed
          ~len t.scratch ~pos:0;
        (Memory.Phys_mem.write_sub t.mem ~addr t.scratch ~pos:0 ~len
        [@cdna.protection_ok
          "native (non-virtualized) baseline: the OS owns all memory and \
           writes its own DMA buffers directly"])
  end;
  let evil =
    match t.malice with
    | None -> None
    | Some (kind, every) ->
        t.malice_seen <- t.malice_seen + 1;
        if t.malice_seen mod every = 0 then Some kind else None
  in
  let emit ~offset ~len ~eop =
    let slot = t.tx_prod in
    let desc =
      {
        Memory.Dma_desc.addr = page_addr pfn + offset;
        len;
        flags = (if eop then Memory.Dma_desc.flag_end_of_packet else 0);
        seqno = slot land 0xFFFF;
      }
    in
    let desc =
      match evil with
      | Some kind when eop ->
          t.malicious_descs <- t.malicious_descs + 1;
          (match kind with
          | Out_of_sequence ->
              { desc with Memory.Dma_desc.seqno = (desc.seqno + 7) land 0xFFFF }
          | Foreign_page p -> { desc with Memory.Dma_desc.addr = page_addr p }
          | Over_length ->
              (* Runs the DMA off the end of the buffer page, far enough
                 to leave any plausible allocation of this driver. *)
              { desc with Memory.Dma_desc.len = (4 * Memory.Addr.page_size) + 512 })
      | Some _ | None -> desc
    in
    Memory.Desc_layout.write t.hw.Nic.Driver_if.desc_layout t.mem
      ~at:(Nic.Ring.slot_addr t.tx_ring slot)
      desc;
    t.tx_prod <- slot + 1
  in
  (match t.sg_split with
  | Some split when len > split ->
      (* Header fragment + payload fragment, as a zero-copy stack would
         hand down (scatter/gather I/O). *)
      emit ~offset:0 ~len:split ~eop:false;
      emit ~offset:split ~len:(len - split) ~eop:true
  | Some _ | None -> emit ~offset:0 ~len ~eop:true);
  t.hw.Nic.Driver_if.stage_tx_meta frame

(* Move queued frames into ring slots and ring the doorbell once. *)
let pump_tx t =
  let moved = ref 0 in
  while
    (match Queue.peek_opt t.pending with
    | Some frame -> ring_space t >= descs_per_packet t frame
    | None -> false)
  do
    write_tx_descriptor t (Queue.pop t.pending);
    incr moved
  done;
  if !moved > 0 then t.hw.Nic.Driver_if.tx_doorbell t.tx_prod;
  if t.was_full && tx_space t > 0 then begin
    t.was_full <- false;
    Netdev.notify_writable (the_netdev t)
  end

let post_rx_descriptor t =
  let slot = t.rx_prod in
  let pfn = t.rx_pages.(slot land (t.rx_slots - 1)) in
  let desc =
    {
      Memory.Dma_desc.addr = page_addr pfn;
      len = Memory.Addr.page_size;
      flags = 0;
      seqno = slot land 0xFFFF;
    }
  in
  Memory.Desc_layout.write t.hw.Nic.Driver_if.desc_layout t.mem
    ~at:(Nic.Ring.slot_addr t.rx_ring slot)
    desc;
  t.rx_prod <- slot + 1

(* Read the received payload back out of the DMA buffer so that memory
   corruption (e.g. protection violations) is observable end to end. *)
let frame_from_buffer t (idx, frame) =
  if not t.materialize then frame
  else begin
    let pfn = t.rx_pages.(idx land (t.rx_slots - 1)) in
    let len = frame.Ethernet.Frame.payload_len in
    let data =
      (Memory.Phys_mem.read t.mem ~addr:(page_addr pfn) ~len
      [@cdna.protection_ok
        "native (non-virtualized) baseline: the OS owns all memory and \
         reads its own DMA buffers directly"])
    in
    { frame with Ethernet.Frame.data = Some data }
  end

let rec poll t () =
  t.polls <- t.polls + 1;
  t.poll_scheduled <- false;
  let tx_done = t.hw.Nic.Driver_if.take_tx_completions () in
  let rxs =
    t.hw.Nic.Driver_if.take_rx_completions ~max:t.costs.Os_costs.rx_poll_budget
  in
  let n_rx = List.length rxs in
  let cost = Sim.Time.mul_int t.costs.Os_costs.driver_rx_per_pkt n_rx in
  t.post_kernel ~cost (fun () ->
      if tx_done > 0 then begin
        t.tx_cons_seen <- t.tx_cons_seen + tx_done;
        t.tx_count <- t.tx_count + tx_done;
        pump_tx t;
        Netdev.notify_tx_done (the_netdev t) tx_done
      end;
      if n_rx > 0 then begin
        let frames = List.map (frame_from_buffer t) rxs in
        List.iter (fun _ -> post_rx_descriptor t) frames;
        t.hw.Nic.Driver_if.rx_doorbell t.rx_prod;
        t.rx_count <- t.rx_count + n_rx;
        Netdev.deliver_rx (the_netdev t) frames
      end;
      (* NAPI: keep polling while the device has more work. *)
      if
        t.hw.Nic.Driver_if.rx_completions_pending () > 0
        && not t.poll_scheduled
      then begin
        t.poll_scheduled <- true;
        t.post_kernel ~cost:t.costs.Os_costs.driver_wakeup_fixed (poll t)
      end)

let handle_interrupt t =
  if not t.poll_scheduled then begin
    t.poll_scheduled <- true;
    t.post_kernel ~cost:t.costs.Os_costs.driver_wakeup_fixed (poll t)
  end

let send_impl t frames =
  let n = List.length frames in
  if n > 0 then begin
    let cost = Sim.Time.mul_int t.costs.Os_costs.driver_tx_per_pkt n in
    t.post_kernel ~cost (fun () ->
        List.iter (fun f -> Queue.push f t.pending) frames;
        pump_tx t;
        if not (Queue.is_empty t.pending) then t.was_full <- true)
  end

let create ~mem ~post_kernel ~costs ~hw ~mac ~alloc_pages ?(tx_slots = 256)
    ?(rx_slots = 256) ?(materialize = false) ?sg_split () =
  (match sg_split with
  | Some n when n <= 0 -> invalid_arg "Native_driver: non-positive sg_split"
  | Some _ | None -> ());
  check_slots "Native_driver tx" tx_slots;
  check_slots "Native_driver rx" rx_slots;
  let page1 l = match l with [ p ] -> p | _ -> assert false in
  let tx_ring_page = page1 (alloc_pages 1) in
  let rx_ring_page = page1 (alloc_pages 1) in
  let status_page = page1 (alloc_pages 1) in
  let tx_pages = Array.of_list (alloc_pages tx_slots) in
  let rx_pages = Array.of_list (alloc_pages rx_slots) in
  let desc_bytes = hw.Nic.Driver_if.desc_layout.Memory.Desc_layout.size in
  let tx_ring =
    Nic.Ring.create ~base:(page_addr tx_ring_page) ~slots:tx_slots ~desc_bytes ()
  in
  let rx_ring =
    Nic.Ring.create ~base:(page_addr rx_ring_page) ~slots:rx_slots ~desc_bytes ()
  in
  let t =
    {
      mem;
      post_kernel;
      costs;
      hw;
      materialize;
      sg_split;
      tx_slots;
      rx_slots;
      tx_ring;
      rx_ring;
      tx_pages;
      rx_pages;
      tx_prod = 0;
      tx_cons_seen = 0;
      rx_prod = 0;
      pending = Queue.create ();
      scratch = Bytes.empty;
      was_full = false;
      poll_scheduled = false;
      netdev = None;
      tx_count = 0;
      rx_count = 0;
      polls = 0;
      malice = None;
      malice_seen = 0;
      malicious_descs = 0;
    }
  in
  let netdev =
    Netdev.create ~mac
      ~send:(fun frames -> send_impl t frames)
      ~tx_space:(fun () -> tx_space t)
  in
  t.netdev <- Some netdev;
  (* Program the hardware and post the full complement of rx buffers. *)
  hw.Nic.Driver_if.setup_tx_ring tx_ring;
  hw.Nic.Driver_if.setup_rx_ring rx_ring;
  hw.Nic.Driver_if.setup_status (page_addr status_page);
  for _ = 1 to rx_slots do
    post_rx_descriptor t
  done;
  hw.Nic.Driver_if.rx_doorbell t.rx_prod;
  t

let netdev t = the_netdev t
let tx_count t = t.tx_count
let rx_count t = t.rx_count
let polls t = t.polls

let set_malice t ?(every = 1) kind =
  if every < 1 then invalid_arg "Native_driver.set_malice: every must be >= 1";
  t.malice <- Option.map (fun k -> (k, every)) kind

let malicious_descs t = t.malicious_descs
