type t = {
  hyp : Xen.Hypervisor.t;
  gnt : Xen.Grant_table.t;
  dom : Xen.Domain.t;
  costs : Os_costs.t;
  xchan : Xchan.t;
  notify_backend : unit -> unit;
  materialize : bool;
  mem : Memory.Phys_mem.t;
  pool : Memory.Addr.pfn Queue.t;
  pending : Ethernet.Frame.t Queue.t;
  (* Reused staging buffer for generating spec-only payloads into pool
     pages; [Phys_mem.write_sub] copies synchronously, so reuse is safe. *)
  mutable scratch : Bytes.t;
  mutable was_full : bool;
  mutable event_pending : bool;
  mutable netdev : Netdev.t option;
  mutable tx_count : int;
  mutable rx_count : int;
}

let the_netdev t = Option.get t.netdev

let post_kernel t ~cost fn = Xen.Hypervisor.kernel_work t.hyp t.dom ~cost fn

(* Land a frame's payload in a pool page without allocating: frames that
   carry bytes are written directly, spec-only frames are generated into
   the reused scratch buffer first. *)
let write_payload t ~addr frame =
  match frame.Ethernet.Frame.data with
  | Some d ->
      (Memory.Phys_mem.write t.mem ~addr d
      [@cdna.protection_ok
        "guest CPU store into the guest's own granted pool page, not DMA"])
  | None ->
      let len = frame.Ethernet.Frame.payload_len in
      if Bytes.length t.scratch < len then
        t.scratch <- Bytes.create (max len 2048);
      Ethernet.Frame.blit_payload ~seed:frame.Ethernet.Frame.payload_seed ~len
        t.scratch ~pos:0;
      (Memory.Phys_mem.write_sub t.mem ~addr t.scratch ~pos:0 ~len
      [@cdna.protection_ok
        "guest CPU store into the guest's own granted pool page, not DMA"])

let tx_space t =
  max 0
    (min (Xchan.tx_space t.xchan) (Queue.length t.pool)
    - Queue.length t.pending)

(* Move pending frames onto the shared ring, attaching a pool page each,
   and kick the back end once per batch. Runs in guest kernel context. *)
let pump t =
  let pushed = ref 0 in
  let was_empty = Xchan.tx_used t.xchan = 0 in
  let continue = ref true in
  while
    !continue
    && (not (Queue.is_empty t.pending))
    && Xchan.tx_space t.xchan > 0
  do
    match Queue.take_opt t.pool with
    | None -> continue := false
    | Some pfn ->
        let frame = Queue.pop t.pending in
        if t.materialize then
          write_payload t ~addr:(Memory.Addr.base_of_pfn pfn) frame;
        ignore (Xchan.tx_push t.xchan { Xchan.frame; pfn });
        incr pushed
  done;
  if !pushed > 0 then begin
    t.tx_count <- t.tx_count + !pushed;
    (* Event-index protocol: only notify when the back end may have gone
       idle on this ring (it was empty); otherwise it will poll the new
       requests on its next run. *)
    if was_empty then t.notify_backend ()
  end;
  if t.was_full && tx_space t > 0 then begin
    t.was_full <- false;
    Netdev.notify_writable (the_netdev t)
  end

let send_impl t frames =
  let n = List.length frames in
  if n > 0 then begin
    let cost = Sim.Time.mul_int t.costs.Os_costs.driver_tx_per_pkt n in
    post_kernel t ~cost (fun () ->
        List.iter (fun f -> Queue.push f t.pending) frames;
        pump t;
        if not (Queue.is_empty t.pending) then t.was_full <- true)
  end

(* Event from netback: take completions (with replacement pages) and
   received packets, charge per-packet kernel time, return the receive
   pages, deliver upward. *)
let rec handle_event t =
  t.event_pending <- false;
  let completed, replacement_pages = Xchan.take_tx_completions t.xchan in
  let rec drain n acc =
    if n = 0 then List.rev acc
    else
      match Xchan.rx_pop t.xchan with
      | None -> List.rev acc
      | Some e -> drain (n - 1) (e :: acc)
  in
  let rxs = drain t.costs.Os_costs.rx_poll_budget [] in
  let n_rx = List.length rxs in
  if completed > 0 || n_rx > 0 then begin
    let cost = Sim.Time.mul_int t.costs.Os_costs.driver_rx_per_pkt n_rx in
    post_kernel t ~cost (fun () ->
        List.iter (fun p -> Queue.push p t.pool) replacement_pages;
        if completed > 0 then begin
          pump t;
          Netdev.notify_tx_done (the_netdev t) completed
        end;
        if n_rx > 0 then begin
          (* Flip the receive pages straight back to the driver domain to
             refill its exchange pool (one hypercall for the batch). *)
          let costs = Xen.Hypervisor.costs t.hyp in
          Xen.Hypervisor.hypercall t.hyp ~from:t.dom
            ~cost:(Sim.Time.mul_int costs.Xen.Costs.grant_transfer n_rx)
            (fun () ->
              match Xen.Hypervisor.driver_domain t.hyp with
              | None -> ()
              | Some driver ->
                  List.iter
                    (fun e ->
                      match
                        Xen.Grant_table.flip t.gnt ~src:t.dom ~dst:driver
                          e.Xchan.pfn
                      with
                      | Ok () -> Xchan.push_returned_page t.xchan e.Xchan.pfn
                      | Error (`Not_owner | `Pinned) -> ())
                    rxs);
          t.rx_count <- t.rx_count + n_rx;
          let frames =
            List.map
              (fun e ->
                if t.materialize then begin
                  let f = e.Xchan.frame in
                  let data =
                    (Memory.Phys_mem.read t.mem
                       ~addr:(Memory.Addr.base_of_pfn e.Xchan.pfn)
                       ~len:f.Ethernet.Frame.payload_len
                    [@cdna.protection_ok
                      "guest CPU load from a page the hypervisor just \
                       flipped to this guest, not DMA"])
                  in
                  { f with Ethernet.Frame.data = Some data }
                end
                else e.Xchan.frame)
              rxs
          in
          Netdev.deliver_rx (the_netdev t) frames
        end;
        (* Continue draining if the ring still has packets. *)
        if Xchan.rx_used t.xchan > 0 && not t.event_pending then begin
          t.event_pending <- true;
          post_kernel t ~cost:t.costs.Os_costs.driver_wakeup_fixed (fun () ->
              handle_event t)
        end)
  end

let create ~hyp ~gnt ~dom ~costs ~xchan ~mac ~notify_backend
    ?(pool_pages = 1024) ?(materialize = false) () =
  let pool = Queue.create () in
  List.iter (fun p -> Queue.push p pool) (Xen.Hypervisor.alloc_pages hyp dom pool_pages);
  let t =
    {
      hyp;
      gnt;
      dom;
      costs;
      xchan;
      notify_backend;
      materialize;
      mem = Xen.Hypervisor.mem hyp;
      pool;
      pending = Queue.create ();
      scratch = Bytes.empty;
      was_full = false;
      event_pending = false;
      netdev = None;
      tx_count = 0;
      rx_count = 0;
    }
  in
  let netdev =
    Netdev.create ~mac
      ~send:(fun frames -> send_impl t frames)
      ~tx_space:(fun () -> tx_space t)
  in
  t.netdev <- Some netdev;
  t

let netdev t = the_netdev t
let dom t = t.dom
let pool_size t = Queue.length t.pool
let tx_count t = t.tx_count
let rx_count t = t.rx_count

let register_metrics t m =
  let labels = [ ("domain", Xen.Domain.name t.dom) ] in
  Sim.Metrics.gauge m ~labels "netfront.tx_count" (fun () -> t.tx_count);
  Sim.Metrics.gauge m ~labels "netfront.rx_count" (fun () -> t.rx_count);
  Sim.Metrics.gauge m ~labels "netfront.pool_size" (fun () ->
      Queue.length t.pool)
