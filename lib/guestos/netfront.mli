(** Paravirtualized front-end network driver (guest side).

    The guest half of Xen's split driver (paper section 2.1): transmit
    requests are placed on the shared channel with the packet's page and
    handed to the driver domain; received packets arrive on the channel as
    pages flipped into the guest. The guest pays kernel time per packet,
    page-exchange hypercalls, and an event-channel notify per batch.

    Page exchange: transmit pages leave the guest (netback flips them) and
    replacement pages come back with completions; receive pages are
    flipped in by netback and the guest flips one of its pages back per
    packet. Pools stay balanced. *)

type t

(** [create ~hyp ~gnt ~dom ~costs ~xchan ~mac ~notify_backend ()] —
    [notify_backend] sends the event that wakes netback (typically an
    {!Xen.Event_channel.notify} from [dom]). [gnt] is the host's grant
    table (shared with netback so the flip ledger balances). [pool_pages]
    (default 1024) are allocated from the guest for the exchange pool. *)
val create :
  hyp:Xen.Hypervisor.t ->
  gnt:Xen.Grant_table.t ->
  dom:Xen.Domain.t ->
  costs:Os_costs.t ->
  xchan:Xchan.t ->
  mac:Ethernet.Mac_addr.t ->
  notify_backend:(unit -> unit) ->
  ?pool_pages:int ->
  ?materialize:bool ->
  unit ->
  t

val netdev : t -> Netdev.t
val dom : t -> Xen.Domain.t

(** Bind as the handler of the guest's event channel from netback. Runs in
    guest kernel context. *)
val handle_event : t -> unit

val pool_size : t -> int
val tx_count : t -> int
val rx_count : t -> int

(** Expose [netfront.tx_count] / [netfront.rx_count] /
    [netfront.pool_size] gauges labelled with the guest domain's name. *)
val register_metrics : t -> Sim.Metrics.t -> unit
