(** Back-end network driver and bridge thread (driver domain).

    The driver-domain half of Xen's software I/O virtualization (paper
    section 2.1): a single kernel thread that, when scheduled,

    - polls every guest's shared channel for transmit requests, performs
      the page exchange (two grant flips per packet), routes each packet
      through the software {!Bridge}, and hands it to the native driver of
      the physical NIC (or to another guest's channel, for inter-guest
      traffic);
    - takes packets received by the physical NICs, routes them through the
      bridge, flips a pool page carrying the payload into the target guest
      and pushes it on that guest's channel;
    - batches one event-channel notification per guest per run.

    The per-ring visit cost makes every run more expensive as guests are
    added even when rings are near-empty — one of the scaling overheads
    behind the paper's Figure 3/4 decline. *)

type costs = {
  per_pkt_tx : Sim.Time.t;
  per_pkt_rx : Sim.Time.t;
  bridge_per_pkt : Sim.Time.t;
  wakeup_fixed : Sim.Time.t;
  per_ring_visit : Sim.Time.t;
  tx_budget : int;  (** Max transmit packets drained per guest per run. *)
  rx_budget : int;  (** Max receive packets processed per run. *)
  rx_overflow_cap : int;  (** Held packets per guest before dropping. *)
}

val default_costs : costs

type t
type iface

val create :
  hyp:Xen.Hypervisor.t ->
  gnt:Xen.Grant_table.t ->
  dom:Xen.Domain.t ->
  costs:costs ->
  ?pool_pages:int ->
  ?materialize:bool ->
  unit ->
  t

(** [add_interface t ~guest_dom ~guest_mac ~xchan ~notify_frontend]
    registers a guest's back-end interface and bridge port. *)
val add_interface :
  t ->
  guest_dom:Xen.Domain.t ->
  guest_mac:Ethernet.Mac_addr.t ->
  xchan:Xchan.t ->
  notify_frontend:(unit -> unit) ->
  iface

(** [add_physical t netdev ~remote_macs] attaches a physical NIC (its
    native driver's device) as a bridge port; received frames feed the
    netback thread. [remote_macs] seeds the forwarding table with stations
    known to be behind this port (what ARP traffic would teach a real
    bridge within milliseconds). *)
val add_physical :
  t -> Netdev.t -> remote_macs:Ethernet.Mac_addr.t list -> unit

(** Wake the netback thread (bind to the guests' event channels). *)
val schedule : t -> unit

val tx_forwarded : t -> int
val rx_delivered : t -> int
val rx_dropped : t -> int
val pool_size : t -> int
val runs : t -> int

(** Expose the forwarding counters ([netback.tx_forwarded],
    [netback.rx_delivered], [netback.rx_dropped], [netback.runs],
    [netback.pool_size]) as gauges. *)
val register_metrics : t -> Sim.Metrics.t -> unit
