type costs = {
  per_pkt_tx : Sim.Time.t;
  per_pkt_rx : Sim.Time.t;
  bridge_per_pkt : Sim.Time.t;
  wakeup_fixed : Sim.Time.t;
  per_ring_visit : Sim.Time.t;
  tx_budget : int;
  rx_budget : int;
  rx_overflow_cap : int;
}

let default_costs =
  {
    per_pkt_tx = Sim.Time.ns 1_200;
    per_pkt_rx = Sim.Time.ns 1_800;
    bridge_per_pkt = Sim.Time.ns 600;
    wakeup_fixed = Sim.Time.us 2;
    per_ring_visit = Sim.Time.ns 700;
    tx_budget = 96;
    rx_budget = 96;
    rx_overflow_cap = 512;
  }

(* Iterate an int-keyed table in ascending key order, so batch fan-outs
   fire in a deterministic sequence regardless of hash-bucket layout. *)
let iter_sorted tbl f =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.iter (fun (k, v) -> f k v)

type iface = {
  guest_dom : Xen.Domain.t;
  guest_mac : Ethernet.Mac_addr.t;
  xchan : Xchan.t;
  notify_frontend : unit -> unit;
  (* Received frames routed to this guest but not yet on its ring. *)
  overflow : Ethernet.Frame.t Queue.t;
}

type port_target = Guest of iface | Phys of Netdev.t

type t = {
  hyp : Xen.Hypervisor.t;
  gnt : Xen.Grant_table.t;
  dom : Xen.Domain.t;
  costs : costs;
  mutable ring_rr : int; (* rotating start for fair ring service *)
  materialize : bool;
  mem : Memory.Phys_mem.t;
  bridge : port_target Bridge.t;
  mutable ifaces : (iface * port_target Bridge.port) list;
  mutable phys : (Netdev.t * port_target Bridge.port) list;
  pool : Memory.Addr.pfn Queue.t;
  (* Reused staging buffer for generating spec-only payloads into
     exchange pages; [Phys_mem.write_sub] copies synchronously. *)
  mutable scratch : Bytes.t;
  rx_inbox : (port_target Bridge.port * Ethernet.Frame.t) Queue.t;
  mutable scheduled : bool;
  mutable tx_forwarded : int;
  mutable rx_delivered : int;
  mutable rx_dropped : int;
  mutable runs : int;
}

let create ~hyp ~gnt ~dom ~costs ?(pool_pages = 4096) ?(materialize = false)
    () =
  let pool = Queue.create () in
  List.iter
    (fun p -> Queue.push p pool)
    (Xen.Hypervisor.alloc_pages hyp dom pool_pages);
  {
    hyp;
    gnt;
    dom;
    costs;
    materialize;
    mem = Xen.Hypervisor.mem hyp;
    ring_rr = 0;
    bridge = Bridge.create ();
    ifaces = [];
    phys = [];
    pool;
    scratch = Bytes.empty;
    rx_inbox = Queue.create ();
    scheduled = false;
    tx_forwarded = 0;
    rx_delivered = 0;
    rx_dropped = 0;
    runs = 0;
  }

let post_kernel t ~cost fn = Xen.Hypervisor.kernel_work t.hyp t.dom ~cost fn

let hypercall t ~cost fn = Xen.Hypervisor.hypercall t.hyp ~from:t.dom ~cost fn

let grant_map_cost t = (Xen.Hypervisor.costs t.hyp).Xen.Costs.grant_map

let grant_transfer_cost t =
  (Xen.Hypervisor.costs t.hyp).Xen.Costs.grant_transfer

(* ---------- The netback thread ---------- *)

(* Work collected during one run. *)
type collected = {
  mutable tx : (iface * Xchan.entry * port_target Bridge.decision) list;
  mutable rx : (iface * Ethernet.Frame.t) list;  (* deliveries to guests *)
}

let rec schedule t =
  if not t.scheduled then begin
    t.scheduled <- true;
    let cost =
      Sim.Time.add t.costs.wakeup_fixed
        (Sim.Time.mul_int t.costs.per_ring_visit (List.length t.ifaces))
    in
    post_kernel t ~cost (fun () -> run t)
  end

and run t =
  t.scheduled <- false;
  t.runs <- t.runs + 1;
  let c = { tx = []; rx = [] } in
  (* Refill the exchange pool with pages returned by guests. *)
  List.iter
    (fun (iface, _) ->
      List.iter
        (fun p -> Queue.push p t.pool)
        (Xchan.take_returned_pages iface.xchan))
    t.ifaces;
  collect_guest_tx t c;
  collect_rx t c;
  let n_tx = List.length c.tx and n_rx = List.length c.rx in
  if n_tx = 0 && n_rx = 0 then ()
  else begin
    let flips_cost =
      Sim.Time.add
        (Sim.Time.mul_int (grant_map_cost t) (2 * n_tx))
        (Sim.Time.mul_int (grant_transfer_cost t) n_rx)
    in
    let pkts_cost =
      Sim.Time.add
        (Sim.Time.mul_int
           (Sim.Time.add t.costs.per_pkt_tx t.costs.bridge_per_pkt)
           n_tx)
        (Sim.Time.mul_int
           (Sim.Time.add t.costs.per_pkt_rx t.costs.bridge_per_pkt)
           n_rx)
    in
    hypercall t ~cost:flips_cost (fun () ->
        post_kernel t ~cost:pkts_cost (fun () ->
            apply t c;
            if more_work t then schedule t))
  end

(* Drain transmit requests from the guest rings — at most [tx_budget]
   packets per run in total (the NAPI-style quantum real netback uses),
   starting from a rotating ring so service stays fair — routing as we go
   and respecting the egress device's available space. *)
and collect_guest_tx t c =
  let phys_budget = Hashtbl.create 8 in
  let space_for nd =
    match Hashtbl.find_opt phys_budget (Ethernet.Mac_addr.to_int48 (Netdev.mac nd)) with
    | Some s -> s
    | None ->
        let s = Netdev.tx_space nd in
        Hashtbl.replace phys_budget (Ethernet.Mac_addr.to_int48 (Netdev.mac nd)) s;
        s
  in
  let consume nd =
    let key = Ethernet.Mac_addr.to_int48 (Netdev.mac nd) in
    Hashtbl.replace phys_budget key (space_for nd - 1)
  in
  let ifaces = Array.of_list t.ifaces in
  let n_ifaces = Array.length ifaces in
  if n_ifaces > 0 then t.ring_rr <- (t.ring_rr + 1) mod n_ifaces;
  let budget = ref t.costs.tx_budget in
  let per_ring_cap = max 4 (t.costs.tx_budget / max 1 n_ifaces) in
  Array.iteri
    (fun k _ ->
      let iface, port = ifaces.((t.ring_rr + k) mod n_ifaces) in
      let ring_budget = ref per_ring_cap in
      let blocked = ref false in
      while
        (not !blocked) && !budget > 0 && !ring_budget > 0
        && Xchan.tx_used iface.xchan > 0
      do
        (* Peek first: if the egress device is full, the request stays on
           the ring — popping and re-pushing would reorder the flow, which
           an in-order receiver never forgives. *)
        match Xchan.tx_peek iface.xchan with
        | None -> blocked := true
        | Some entry ->
            let decision =
              Bridge.route t.bridge ~ingress:port entry.Xchan.frame
            in
            (match decision with
            | Bridge.To p -> (
                match Bridge.payload p with
                | Phys nd ->
                    if space_for nd <= 0 then blocked := true else consume nd
                | Guest _ -> ())
            | Bridge.Flood _ | Bridge.Drop -> ());
            if not !blocked then begin
              ignore (Xchan.tx_pop iface.xchan);
              decr budget;
              decr ring_budget;
              c.tx <- (iface, entry, decision) :: c.tx
            end
      done)
    ifaces;
  c.tx <- List.rev c.tx

and collect_rx t c =
  let budget = ref t.costs.rx_budget in
  (* First serve frames held over from previous runs. *)
  List.iter
    (fun (iface, _) ->
      while !budget > 0 && Xchan.rx_space iface.xchan > 0
            && Queue.length iface.overflow > 0 do
        c.rx <- (iface, Queue.pop iface.overflow) :: c.rx;
        decr budget
      done)
    t.ifaces;
  let continue = ref true in
  while !continue && !budget > 0 do
    match Queue.take_opt t.rx_inbox with
    | None -> continue := false
    | Some (ingress, frame) -> (
        match Bridge.route t.bridge ~ingress frame with
        | Bridge.To p -> (
            match Bridge.payload p with
            | Guest iface ->
                if Xchan.rx_space iface.xchan > 0 then begin
                  c.rx <- (iface, frame) :: c.rx;
                  decr budget
                end
                else if Queue.length iface.overflow < t.costs.rx_overflow_cap
                then Queue.push frame iface.overflow
                else begin
                  t.rx_dropped <- t.rx_dropped + 1
                end
            | Phys nd -> Netdev.send nd [ frame ])
        | Bridge.Flood ports ->
            List.iter
              (fun p ->
                match Bridge.payload p with
                | Guest iface ->
                    if Queue.length iface.overflow < t.costs.rx_overflow_cap
                    then Queue.push frame iface.overflow
                    else t.rx_dropped <- t.rx_dropped + 1
                | Phys nd -> Netdev.send nd [ frame ])
              ports
        | Bridge.Drop -> ())
  done;
  c.rx <- List.rev c.rx

(* Apply the collected work: page flips were paid for in the hypercall
   item; here we mutate ownership, move frames, and notify guests. *)
and apply t c =
  (* Event-index protocol: a guest only needs a virtual interrupt if its
     channel was quiet (nothing pending) before this run produced into it;
     a guest with pending state keeps polling until it drains. Quiescence
     is captured before any mutation below. *)
  let quiet_at_entry = Hashtbl.create 8 in
  List.iter
    (fun (iface, _) ->
      Hashtbl.replace quiet_at_entry
        (Xen.Domain.id iface.guest_dom)
        (Xchan.rx_used iface.xchan = 0
        && Xchan.tx_completions_pending iface.xchan = 0))
    t.ifaces;
  let touched = Hashtbl.create 8 in
  let touch iface =
    let key = Xen.Domain.id iface.guest_dom in
    if not (Hashtbl.mem touched key) then begin
      let quiet =
        match Hashtbl.find_opt quiet_at_entry key with
        | Some q -> q
        | None -> true
      in
      Hashtbl.replace touched key (iface, quiet)
    end
  in
  (* Guest transmit: exchange pages and forward through the bridge. *)
  let per_nd = Hashtbl.create 8 in
  let completions = Hashtbl.create 8 in
  List.iter
    (fun (iface, entry, decision) ->
      (* Flip the data page guest -> driver. *)
      (match
         Xen.Grant_table.flip t.gnt ~src:iface.guest_dom ~dst:t.dom
           entry.Xchan.pfn
       with
      | Ok () -> Queue.push entry.Xchan.pfn t.pool
      | Error (`Not_owner | `Pinned) -> ());
      (* Pick a replacement page driver -> guest. *)
      let replacement =
        match Queue.take_opt t.pool with
        | Some pfn -> (
            match
              Xen.Grant_table.flip t.gnt ~src:t.dom ~dst:iface.guest_dom pfn
            with
            | Ok () -> [ pfn ]
            | Error (`Not_owner | `Pinned) -> [])
        | None -> []
      in
      let key = Xen.Domain.id iface.guest_dom in
      let count, pages =
        match Hashtbl.find_opt completions key with
        | Some (c, p) -> (c, p)
        | None -> (0, [])
      in
      Hashtbl.replace completions key (count + 1, replacement @ pages);
      touch iface;
      t.tx_forwarded <- t.tx_forwarded + 1;
      let frame = entry.Xchan.frame in
      match decision with
      | Bridge.To p -> (
          match Bridge.payload p with
          | Phys nd ->
              let key = Ethernet.Mac_addr.to_int48 (Netdev.mac nd) in
              let batch =
                match Hashtbl.find_opt per_nd key with
                | Some (nd, fs) -> (nd, frame :: fs)
                | None -> (nd, [ frame ])
              in
              Hashtbl.replace per_nd key batch
          | Guest dst_iface ->
              (* Inter-guest traffic becomes a receive on the peer. *)
              if Queue.length dst_iface.overflow < t.costs.rx_overflow_cap
              then Queue.push frame dst_iface.overflow
              else t.rx_dropped <- t.rx_dropped + 1)
      | Bridge.Flood ports ->
          List.iter
            (fun p ->
              match Bridge.payload p with
              | Phys nd -> Netdev.send nd [ frame ]
              | Guest dst_iface ->
                  if Queue.length dst_iface.overflow < t.costs.rx_overflow_cap
                  then Queue.push frame dst_iface.overflow
                  else t.rx_dropped <- t.rx_dropped + 1)
            ports
      | Bridge.Drop -> ())
    c.tx;
  iter_sorted per_nd (fun _ (nd, fs) -> Netdev.send nd (List.rev fs));
  (* Deliveries to guests: flip a pool page carrying the payload in. *)
  List.iter
    (fun (iface, frame) ->
      match Queue.take_opt t.pool with
      | None ->
          (* Exchange pool empty; hold the frame for the next run. *)
          Queue.push frame iface.overflow
      | Some pfn -> (
          if t.materialize then begin
            let addr = Memory.Addr.base_of_pfn pfn in
            match frame.Ethernet.Frame.data with
            | Some d ->
                (Memory.Phys_mem.write t.mem ~addr d
                [@cdna.protection_ok
                  "driver-domain CPU store into its own exchange-pool page \
                   before flipping it to the guest, not DMA"])
            | None ->
                let len = frame.Ethernet.Frame.payload_len in
                if Bytes.length t.scratch < len then
                  t.scratch <- Bytes.create (max len 2048);
                Ethernet.Frame.blit_payload
                  ~seed:frame.Ethernet.Frame.payload_seed ~len t.scratch
                  ~pos:0;
                (Memory.Phys_mem.write_sub t.mem ~addr t.scratch ~pos:0 ~len
                [@cdna.protection_ok
                  "driver-domain CPU store into its own exchange-pool page \
                   before flipping it to the guest, not DMA"])
          end;
          match
            Xen.Grant_table.flip t.gnt ~src:t.dom ~dst:iface.guest_dom pfn
          with
          | Ok () ->
              if Xchan.rx_push iface.xchan { Xchan.frame; pfn } then begin
                t.rx_delivered <- t.rx_delivered + 1;
                touch iface
              end
              else begin
                (* Ring filled meanwhile: undo the flip, hold the frame. *)
                (match
                   Xen.Grant_table.flip t.gnt ~src:iface.guest_dom ~dst:t.dom
                     pfn
                 with
                | Ok () -> Queue.push pfn t.pool
                | Error (`Not_owner | `Pinned) -> ());
                Queue.push frame iface.overflow
              end
          | Error (`Not_owner | `Pinned) -> Queue.push pfn t.pool))
    c.rx;
  (* Push completion records and send one notification per touched guest. *)
  iter_sorted completions (fun dom_id (count, pages) ->
      match
        List.find_opt
          (fun (i, _) -> Xen.Domain.id i.guest_dom = dom_id)
          t.ifaces
      with
      | Some (iface, _) ->
          Xchan.push_tx_completion iface.xchan ~pages ~count
      | None -> ());
  iter_sorted touched (fun _ (iface, quiet) ->
      if quiet then iface.notify_frontend ())

and more_work t =
  Queue.length t.rx_inbox > 0
  || List.exists
       (fun (iface, _) ->
         Xchan.tx_used iface.xchan > 0
         || (Queue.length iface.overflow > 0 && Xchan.rx_space iface.xchan > 0))
       t.ifaces

let add_interface t ~guest_dom ~guest_mac ~xchan ~notify_frontend =
  let iface =
    { guest_dom; guest_mac; xchan; notify_frontend; overflow = Queue.create () }
  in
  let port = Bridge.add_port t.bridge (Guest iface) in
  Bridge.learn t.bridge port guest_mac;
  t.ifaces <- t.ifaces @ [ (iface, port) ];
  iface

let add_physical t netdev ~remote_macs =
  let port = Bridge.add_port t.bridge (Phys netdev) in
  Bridge.learn t.bridge port (Netdev.mac netdev);
  List.iter (fun mac -> Bridge.learn t.bridge port mac) remote_macs;
  t.phys <- t.phys @ [ (netdev, port) ];
  Netdev.set_rx_handler netdev (fun frames ->
      List.iter (fun f -> Queue.push (port, f) t.rx_inbox) frames;
      schedule t);
  Netdev.set_writable_hook netdev (fun () -> schedule t);
  (* Transmit completions return physical ring slots; resume draining the
     guest rings that were blocked on egress space. *)
  Netdev.set_tx_done_handler netdev (fun _ -> schedule t)

let tx_forwarded t = t.tx_forwarded
let rx_delivered t = t.rx_delivered
let rx_dropped t = t.rx_dropped
let pool_size t = Queue.length t.pool
let runs t = t.runs

let register_metrics t m =
  Sim.Metrics.gauge m "netback.tx_forwarded" (fun () -> t.tx_forwarded);
  Sim.Metrics.gauge m "netback.rx_delivered" (fun () -> t.rx_delivered);
  Sim.Metrics.gauge m "netback.rx_dropped" (fun () -> t.rx_dropped);
  Sim.Metrics.gauge m "netback.runs" (fun () -> t.runs);
  Sim.Metrics.gauge m "netback.pool_size" (fun () -> Queue.length t.pool)
