(** Grant tables: page transfers between domains.

    Xen's netfront/netback move packet pages between guest and driver
    domain by {e page flipping} — remapping ownership rather than copying
    (paper section 2.1). [flip] validates ownership and transfers the page;
    the caller charges the hypercall cost.

    A page pinned by outstanding DMA (non-zero reference count) cannot be
    flipped, mirroring the reallocation constraint of section 3.3.

    Each hypervisor instance gets its own table ([create]); the flip
    counter lives in the table so independent hosts — and, under
    [Sim.Shard], independent logical processes — share no grant state. *)

type error =
  [ `Not_owner  (** Source domain does not own the page. *)
  | `Pinned  (** Page has outstanding DMA references. *) ]

(** A grant table bound to one hypervisor instance. *)
type t

val create : Hypervisor.t -> t

(** [flip t ~src ~dst pfn] moves ownership of [pfn] from [src] to
    [dst]. *)
val flip :
  t -> src:Domain.t -> dst:Domain.t -> Memory.Addr.pfn -> (unit, error) result

(** Completed flips through this table (per-table diagnostic counter). *)
val flips : t -> int

val reset_flips : t -> unit
