(** The hypervisor.

    Performs Xen's three key functions from paper section 2.1: it
    {b allocates physical resources} to domains and isolates them (memory
    ownership via {!Memory.Phys_mem}, CPU via {!Host.Cpu}'s credit
    scheduler), it {b receives all physical interrupts} and forwards them
    as virtual interrupts, and it {b mediates I/O access} (MMIO mappings of
    device regions are handed out by the hypervisor only).

    Hypercalls execute on the calling domain's vcpu but are charged to the
    hypervisor category, matching how Xenoprof attributes them. *)

type t

val create :
  Sim.Engine.t ->
  cpu:Host.Cpu.t ->
  mem:Memory.Phys_mem.t ->
  ?costs:Costs.t ->
  unit ->
  t

val engine : t -> Sim.Engine.t

(** Cancel the scheduler's self-rescheduling credit-replenish timer so a
    finished simulation's event queue can drain to empty. *)
val stop : t -> unit

val cpu : t -> Host.Cpu.t
val mem : t -> Memory.Phys_mem.t
val costs : t -> Costs.t

(** {1 Domains} *)

(** [create_domain t ~name ~kind ~weight ~mem_pages] allocates memory and a
    scheduler entity. Domain ids are assigned sequentially from 0.
    @raise Invalid_argument if memory is exhausted. *)
val create_domain :
  t -> name:string -> kind:Domain.kind -> weight:int -> mem_pages:int -> Domain.t

val domains : t -> Domain.t list
val driver_domain : t -> Domain.t option
val domain_by_id : t -> Host.Category.domain_id -> Domain.t option

(** {1 Memory on behalf of domains} *)

(** Owner id used for pages held by the hypervisor itself (e.g. the CDNA
    interrupt bit-vector buffer). *)
val hypervisor_owner : Host.Category.domain_id

(** [alloc_hyp_pages t n] allocates hypervisor-owned pages.
    @raise Invalid_argument when out of memory. *)
val alloc_hyp_pages : t -> int -> Memory.Addr.pfn list

(** [alloc_pages t dom n] gives [dom] [n] more pages.
    @raise Invalid_argument when out of memory. *)
val alloc_pages : t -> Domain.t -> int -> Memory.Addr.pfn list

(** [free_page t dom pfn] returns a page to the hypervisor's allocator
    (subject to quarantine while DMA references are outstanding).
    @raise Invalid_argument if [dom] does not own [pfn]. *)
val free_page : t -> Domain.t -> Memory.Addr.pfn -> unit

(** {1 Execution} *)

(** [hypercall t ~from ~cost fn] runs [fn] after [cost] of hypervisor time
    on [from]'s vcpu. *)
val hypercall : t -> from:Domain.t -> cost:Sim.Time.t -> (unit -> unit) -> unit

(** [kernel_work t dom ~cost fn] posts guest-kernel work. *)
val kernel_work : t -> Domain.t -> cost:Sim.Time.t -> (unit -> unit) -> unit

(** [user_work t dom ~cost fn] posts guest-user work. *)
val user_work : t -> Domain.t -> cost:Sim.Time.t -> (unit -> unit) -> unit

(** {1 Interrupts} *)

(** [route_irq t irq handler] captures a physical interrupt line: each
    assertion costs ISR time in the hypervisor, then runs [handler] (which
    typically notifies event channels). *)
val route_irq : t -> Bus.Irq.t -> (unit -> unit) -> unit

(** Physical interrupts handled so far. *)
val physical_irqs : t -> int

(** Hypercalls issued so far (all domains). *)
val hypercalls : t -> int

val reset_counters : t -> unit

(** Expose [xen.phys_irqs], [xen.hypercalls] and per-domain
    [xen.domain.virqs] gauges. Call after all domains exist. *)
val register_metrics : t -> Sim.Metrics.t -> unit
