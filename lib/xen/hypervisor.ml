type t = {
  engine : Sim.Engine.t;
  cpu : Host.Cpu.t;
  mem : Memory.Phys_mem.t;
  costs : Costs.t;
  mutable domains : Domain.t list;
  mutable next_id : int;
  mutable phys_irqs : int;
  mutable hypercalls : int;
}

let create engine ~cpu ~mem ?(costs = Costs.default) () =
  {
    engine;
    cpu;
    mem;
    costs;
    domains = [];
    next_id = 0;
    phys_irqs = 0;
    hypercalls = 0;
  }

let engine t = t.engine
let stop t = Host.Cpu.stop t.cpu
let cpu t = t.cpu
let mem t = t.mem
let costs t = t.costs

let create_domain t ~name ~kind ~weight ~mem_pages =
  let id = t.next_id in
  t.next_id <- id + 1;
  let pages =
    match Memory.Phys_mem.alloc t.mem ~owner:id ~count:mem_pages with
    | Ok pages -> pages
    | Error `Out_of_memory ->
        invalid_arg "Hypervisor.create_domain: out of memory"
  in
  let entity = Host.Cpu.add_entity t.cpu ~name ~weight ~domain:id in
  let dom = Domain.make ~id ~name ~kind ~entity ~pages in
  t.domains <- t.domains @ [ dom ];
  dom

let domains t = t.domains

let driver_domain t =
  List.find_opt (fun d -> Domain.kind d = Domain.Driver) t.domains

let domain_by_id t id = List.find_opt (fun d -> Domain.id d = id) t.domains

let hypervisor_owner = -1

let alloc_hyp_pages t n =
  match Memory.Phys_mem.alloc t.mem ~owner:hypervisor_owner ~count:n with
  | Ok pages -> pages
  | Error `Out_of_memory ->
      invalid_arg "Hypervisor.alloc_hyp_pages: out of memory"

let alloc_pages t dom n =
  match Memory.Phys_mem.alloc t.mem ~owner:(Domain.id dom) ~count:n with
  | Ok pages ->
      List.iter (Domain.add_page dom) pages;
      pages
  | Error `Out_of_memory -> invalid_arg "Hypervisor.alloc_pages: out of memory"

let free_page t dom pfn =
  if not (Memory.Phys_mem.owned_by t.mem pfn (Domain.id dom)) then
    invalid_arg "Hypervisor.free_page: domain does not own page";
  Memory.Phys_mem.free t.mem pfn;
  Domain.remove_page dom pfn

let hypercall t ~from ~cost fn =
  t.hypercalls <- t.hypercalls + 1;
  if Sim.Trace.tag_enabled "hypercall" then
    Sim.Trace.instant ~time:(Sim.Engine.now t.engine) ~tag:"hypercall"
      ~pid:(Domain.id from + 1)
      ~args:
        [
          ("cost_ns", Sim.Trace.Int (Sim.Time.to_ns cost));
          ("domain", Sim.Trace.Str (Domain.name from));
        ]
      "hypercall";
  Host.Cpu.post t.cpu (Domain.entity from) ~category:Host.Category.Hypervisor
    ~cost fn

let kernel_work t dom ~cost fn =
  Host.Cpu.post t.cpu (Domain.entity dom) ~category:(Domain.kernel dom) ~cost fn

let user_work t dom ~cost fn =
  Host.Cpu.post t.cpu (Domain.entity dom) ~category:(Domain.user dom) ~cost fn

let route_irq t irq handler =
  Bus.Irq.set_handler irq (fun () ->
      t.phys_irqs <- t.phys_irqs + 1;
      if Sim.Trace.tag_enabled "irq" then
        Sim.Trace.instant ~time:(Sim.Engine.now t.engine) ~tag:"irq"
          "phys-irq";
      Host.Cpu.post_irq t.cpu ~cost:t.costs.Costs.isr handler)

let physical_irqs t = t.phys_irqs
let hypercalls t = t.hypercalls
let reset_counters t = t.phys_irqs <- 0

let register_metrics t m =
  Sim.Metrics.gauge m "xen.phys_irqs" (fun () -> t.phys_irqs);
  Sim.Metrics.gauge m "xen.hypercalls" (fun () -> t.hypercalls);
  List.iter
    (fun d ->
      Sim.Metrics.gauge m
        ~labels:[ ("domain", Domain.name d) ]
        "xen.domain.virqs"
        (fun () -> Domain.virq_count d))
    t.domains
