type t = {
  hyp : Hypervisor.t;
  target : Domain.t;
  isr_cost : Sim.Time.t;
  handler : unit -> unit;
  mutable pending : bool;
  mutable deliveries : int;
  mutable merged : int;
}

let create hyp ~target ~isr_cost ~handler =
  { hyp; target; isr_cost; handler; pending = false; deliveries = 0; merged = 0 }

let target t = t.target

(* Mark pending and post the target's virtual ISR. Runs in whatever
   context performs the dispatch; the dispatch cost itself is charged by
   the callers below. *)
let deliver t =
  if t.pending then t.merged <- t.merged + 1
  else begin
    t.pending <- true;
    t.deliveries <- t.deliveries + 1;
    Domain.incr_virq t.target;
    if Sim.Trace.tag_enabled "irq" then
      Sim.Trace.instant
        ~time:(Sim.Engine.now (Hypervisor.engine t.hyp))
        ~tag:"irq"
        ~pid:(Domain.id t.target + 1)
        ~args:[ ("domain", Sim.Trace.Str (Domain.name t.target)) ]
        "virq";
    Host.Cpu.post (Hypervisor.cpu t.hyp) (Domain.entity t.target)
      ~category:(Domain.kernel t.target) ~cost:t.isr_cost (fun () ->
        t.pending <- false;
        t.handler ())
  end

let notify t ~from =
  let costs = Hypervisor.costs t.hyp in
  Hypervisor.hypercall t.hyp ~from
    ~cost:(Sim.Time.add costs.Costs.event_notify costs.Costs.virq_dispatch)
    (fun () -> deliver t)

let notify_from_hypervisor t =
  let costs = Hypervisor.costs t.hyp in
  Host.Cpu.post_irq (Hypervisor.cpu t.hyp) ~cost:costs.Costs.virq_dispatch
    (fun () -> deliver t)

let deliveries t = t.deliveries
let merged t = t.merged

let reset_counters t =
  t.deliveries <- 0;
  t.merged <- 0
