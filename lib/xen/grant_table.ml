type error = [ `Not_owner | `Pinned ]
type t = { hyp : Hypervisor.t; mutable count : int }

let create hyp = { hyp; count = 0 }

let flip t ~src ~dst pfn =
  let mem = Hypervisor.mem t.hyp in
  if not (Memory.Phys_mem.owned_by mem pfn (Domain.id src)) then Error `Not_owner
  else
    match Memory.Phys_mem.transfer mem pfn ~to_:(Domain.id dst) with
    | Error `Pinned -> Error `Pinned
    | Ok () ->
        Domain.remove_page src pfn;
        Domain.add_page dst pfn;
        t.count <- t.count + 1;
        Ok ()

let flips t = t.count
let reset_flips t = t.count <- 0
