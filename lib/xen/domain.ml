type kind = Driver | Guest | Native

type t = {
  id : Host.Category.domain_id;
  name : string;
  kind : kind;
  entity : Host.Cpu.entity;
  page_set : (Memory.Addr.pfn, unit) Hashtbl.t;
  mutable virqs : int;
}

let make ~id ~name ~kind ~entity ~pages =
  let page_set = Hashtbl.create 256 in
  List.iter (fun p -> Hashtbl.replace page_set p ()) pages;
  { id; name; kind; entity; page_set; virqs = 0 }

let id t = t.id
let name t = t.name
let kind t = t.kind
let entity t = t.entity
let kernel t = Host.Category.Kernel t.id
let user t = Host.Category.User t.id
let pages t =
  Hashtbl.fold (fun p () acc -> p :: acc) t.page_set []
  |> List.sort Int.compare
let page_count t = Hashtbl.length t.page_set
let virq_count t = t.virqs
let reset_virq_count t = t.virqs <- 0
let add_page t p = Hashtbl.replace t.page_set p ()
let remove_page t p = Hashtbl.remove t.page_set p
let incr_virq t = t.virqs <- t.virqs + 1
