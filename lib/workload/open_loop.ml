(* Open-loop traffic generator over a Flow_table.

   Load model: flows arrive from a Pattern.Arrival source regardless of
   how the datapath is keeping up (open loop — arrivals never wait on
   completions, which is what makes overload visible). Each flow draws
   a heavy-tailed size in packets from a quantized inverse-CDF table
   (bounded Pareto or log-uniform: elephants and mice). Admitted flows
   queue on a round-robin service ring; a single abstract datapath
   serves one packet per service interval, cycling the ring, so every
   live flow shares the bottleneck like processor sharing. When a
   flow's last packet is served its completion latency lands in a
   per-class histogram.

   The datapath is characterized by integers only (derived cold from
   Experiments.Cost_model by the harness):
     - [base_service_ns]: per-packet CPU cost of the datapath;
     - [wire_gap_ns]: per-packet wire time (aggregate across NICs) —
       service is the max of the two (CPU-bound vs link-bound);
     - [touch_step_ns]/[touch_floor]: per-packet flow-state touch
       penalty that grows by one step per doubling of live flows above
       [touch_floor], modelling cache/TLB pressure of software
       datapaths; 0 for hardware per-context state (CDNA).

   SYN-flood scenario: a per-mille share of arrivals are embryonic
   (zero-packet) flows that occupy table slots until a fixed timeout;
   since the timeout is constant, arrival order is expiry order and a
   FIFO ring of (slot, deadline) drains them with no search.

   Everything past [create]/[preload]/[start] is [@cdna.hot]: the
   admission, service and completion paths are statically and
   dynamically allocation-free — a million concurrent flows cost flat
   preallocated arrays and zero GC traffic. *)

type size_dist =
  | Pareto of { alpha : float; min_pkts : int; max_pkts : int }
  | Log_uniform of { min_pkts : int; max_pkts : int }

type config = {
  capacity : int;
  arrival : Pattern.Arrival.t;
  sizes : size_dist;
  base_service_ns : int;
  wire_gap_ns : int;
  touch_step_ns : int;
  touch_floor : int;
  elephant_min_pkts : int;
  syn_permille : int;
  syn_timeout : Sim.Time.t;
  seed : int;
}

let default =
  {
    capacity = 1 lsl 10;
    arrival = Pattern.Arrival.Poisson { mean_gap = Sim.Time.us 50 };
    sizes = Pareto { alpha = 1.2; min_pkts = 1; max_pkts = 16384 };
    base_service_ns = 2_600;
    wire_gap_ns = 6_152;
    touch_step_ns = 0;
    touch_floor = 4096;
    elephant_min_pkts = 64;
    syn_permille = 0;
    syn_timeout = Sim.Time.ms 3;
    seed = 1;
  }

type t = {
  engine : Sim.Engine.t;
  table : Flow_table.t;
  arrivals : Pattern.Arrival.source;
  sizes : int array; (* inverse-CDF flow-size table, packets *)
  smask : int;
  mutable prng : int;
  base_service_ns : int;
  wire_gap_ns : int;
  touch_step_ns : int;
  touch_floor : int;
  elephant_min_pkts : int;
  syn_permille : int;
  syn_timeout_ns : int;
  (* round-robin service ring of live slots *)
  ring : int array;
  rmask : int;
  mutable rhead : int;
  mutable rtail : int;
  (* FIFO of embryonic slots awaiting their fixed timeout *)
  syn_ring : int array;
  syn_deadline : int array;
  synmask : int;
  mutable shead : int;
  mutable stail : int;
  mutable next_key : int;
  mutable stop_at_ns : int; (* no arrivals scheduled past this; 0 = none *)
  mutable server_busy : bool;
  mutable served_pkts : int;
  mice_lat : Sim.Stats.Histogram.t;
  elephant_lat : Sim.Stats.Histogram.t;
  mutable arrival_cb : unit -> unit;
  mutable service_cb : unit -> unit;
}

let rec ceil_pow2 n acc = if acc >= n then acc else ceil_pow2 n (acc * 2)
let table_bits = 12
let table_len = 1 lsl table_bits

(* Quantized inverse CDF of the flow-size distribution: entry [i] is the
   size (packets) at quantile (i + 0.5) / n. Cold float math; hot code
   samples a uniform index. *)
let size_table spec =
  let icdf =
    match spec with
    | Pareto { alpha; min_pkts; max_pkts } ->
        if alpha <= 0. || min_pkts < 1 || max_pkts < min_pkts then
          invalid_arg "Open_loop: bad Pareto parameters";
        let xm = float_of_int min_pkts and xx = float_of_int max_pkts in
        fun u ->
          let tail = 1. -. (u *. (1. -. ((xm /. xx) ** alpha))) in
          xm /. (tail ** (1. /. alpha))
    | Log_uniform { min_pkts; max_pkts } ->
        if min_pkts < 1 || max_pkts < min_pkts then
          invalid_arg "Open_loop: bad log-uniform parameters";
        let xm = float_of_int min_pkts and xx = float_of_int max_pkts in
        fun u -> xm *. ((xx /. xm) ** u)
  in
  let lo, hi =
    match spec with
    | Pareto { min_pkts; max_pkts; _ } | Log_uniform { min_pkts; max_pkts } ->
        (min_pkts, max_pkts)
  in
  Array.init table_len (fun i ->
      let u = (float_of_int i +. 0.5) /. float_of_int table_len in
      Stdlib.min hi (Stdlib.max lo (int_of_float (Float.round (icdf u)))))

let[@cdna.hot] log2_floor v =
  let rec scan v acc = if v <= 1 then acc else scan (v lsr 1) (acc + 1) in
  scan v 0

(* Current per-packet service time: max of CPU cost (plus live-flow
   state-touch penalty) and wire time. *)
let[@cdna.hot] service_ns t =
  let live = Flow_table.live t.table in
  let cpu =
    if t.touch_step_ns = 0 || live < t.touch_floor then t.base_service_ns
    else t.base_service_ns + (t.touch_step_ns * log2_floor (live / t.touch_floor))
  in
  if cpu > t.wire_gap_ns then cpu else t.wire_gap_ns

let[@cdna.hot] ring_push t slot =
  Array.unsafe_set t.ring (t.rtail land t.rmask) slot;
  t.rtail <- t.rtail + 1

let[@cdna.hot] ring_pop t =
  let s = Array.unsafe_get t.ring (t.rhead land t.rmask) in
  t.rhead <- t.rhead + 1;
  s

(* Expire embryonic flows whose fixed timeout has passed. FIFO order =
   deadline order, so this is a bounded head scan, not a search. *)
let[@cdna.hot] expire_syns t now_ns =
  let scanning = ref true in
  while !scanning && t.shead <> t.stail do
    let i = t.shead land t.synmask in
    if Array.unsafe_get t.syn_deadline i <= now_ns then begin
      Flow_table.expire t.table ~slot:(Array.unsafe_get t.syn_ring i);
      t.shead <- t.shead + 1
    end
    else scanning := false
  done

let[@cdna.hot] kick_server t =
  if not t.server_busy && t.rhead <> t.rtail then begin
    t.server_busy <- true;
    ignore
      (Sim.Engine.schedule t.engine
         ~delay:(Sim.Time.ns (service_ns t))
         t.service_cb)
  end

(* Admit one flow: the per-arrival hot path. *)
let[@cdna.hot] do_arrival t =
  let now_ns = Sim.Time.to_ns (Sim.Engine.now t.engine) in
  expire_syns t now_ns;
  let key = t.next_key in
  t.next_key <- key + 1;
  let p = Pattern.xorshift t.prng in
  t.prng <- p;
  if t.syn_permille > 0 && p mod 1000 < t.syn_permille then begin
    let slot = Flow_table.insert t.table ~key ~pkts:0 ~now:now_ns in
    if slot >= 0 then begin
      Array.unsafe_set t.syn_ring (t.stail land t.synmask) slot;
      Array.unsafe_set t.syn_deadline (t.stail land t.synmask)
        (now_ns + t.syn_timeout_ns);
      t.stail <- t.stail + 1
    end
  end
  else begin
    let p2 = Pattern.xorshift p in
    t.prng <- p2;
    let pkts = Array.unsafe_get t.sizes (p2 land t.smask) in
    let slot = Flow_table.insert t.table ~key ~pkts ~now:now_ns in
    if slot >= 0 then begin
      ring_push t slot;
      kick_server t
    end
  end;
  let gap = Pattern.Arrival.next_gap t.arrivals in
  if t.stop_at_ns = 0 || now_ns + gap <= t.stop_at_ns then
    ignore (Sim.Engine.schedule t.engine ~delay:(Sim.Time.ns gap) t.arrival_cb)

(* Serve one packet of the flow at the ring head: the per-packet hot
   path. Completion records latency into the class histogram. *)
let[@cdna.hot] do_service t =
  let now_ns = Sim.Time.to_ns (Sim.Engine.now t.engine) in
  expire_syns t now_ns;
  if t.rhead = t.rtail then t.server_busy <- false
  else begin
    let slot = ring_pop t in
    t.served_pkts <- t.served_pkts + 1;
    let left = Flow_table.dec_remaining t.table ~slot in
    if left > 0 then ring_push t slot
    else begin
      let total = Flow_table.total_pkts t.table ~slot in
      let lat = Flow_table.complete t.table ~slot ~now:now_ns in
      Sim.Stats.Histogram.add
        (if total >= t.elephant_min_pkts then t.elephant_lat else t.mice_lat)
        lat
    end;
    if t.rhead <> t.rtail then
      ignore
        (Sim.Engine.schedule t.engine
           ~delay:(Sim.Time.ns (service_ns t))
           t.service_cb)
    else t.server_busy <- false
  end

let create ?metrics engine (cfg : config) =
  if cfg.capacity <= 0 then invalid_arg "Open_loop.create: capacity";
  if cfg.base_service_ns <= 0 || cfg.wire_gap_ns <= 0 then
    invalid_arg "Open_loop.create: service times must be positive";
  if cfg.touch_floor < 1 then invalid_arg "Open_loop.create: touch_floor";
  if cfg.syn_permille < 0 || cfg.syn_permille > 1000 then
    invalid_arg "Open_loop.create: syn_permille";
  let hist cls =
    match metrics with
    | Some m ->
        Sim.Metrics.histogram m ~labels:[ ("class", cls) ] "openloop.flow_latency_ns"
    | None -> Sim.Stats.Histogram.create ()
  in
  let ring_size = ceil_pow2 (cfg.capacity + 1) 16 in
  let t =
    {
      engine;
      table = Flow_table.create ~capacity:cfg.capacity;
      arrivals = Pattern.Arrival.source ~seed:cfg.seed cfg.arrival;
      sizes = size_table cfg.sizes;
      smask = table_len - 1;
      prng =
        Pattern.xorshift
          (Pattern.xorshift (cfg.seed lxor 0x5DEECE66D) lxor 0x0BADCAFE);
      base_service_ns = cfg.base_service_ns;
      wire_gap_ns = cfg.wire_gap_ns;
      touch_step_ns = cfg.touch_step_ns;
      touch_floor = cfg.touch_floor;
      elephant_min_pkts = cfg.elephant_min_pkts;
      syn_permille = cfg.syn_permille;
      syn_timeout_ns = Sim.Time.to_ns cfg.syn_timeout;
      ring = Array.make ring_size 0;
      rmask = ring_size - 1;
      rhead = 0;
      rtail = 0;
      syn_ring = Array.make ring_size 0;
      syn_deadline = Array.make ring_size 0;
      synmask = ring_size - 1;
      shead = 0;
      stail = 0;
      next_key = 0;
      stop_at_ns = 0;
      server_busy = false;
      served_pkts = 0;
      mice_lat = hist "mouse";
      elephant_lat = hist "elephant";
      arrival_cb = ignore;
      service_cb = ignore;
    }
  in
  t.arrival_cb <- (fun () -> do_arrival t);
  t.service_cb <- (fun () -> do_service t);
  t

(* Admit [flows] flows immediately (the standing population of a scale
   point) without waiting for the arrival process. *)
let preload t ~flows =
  let now_ns = Sim.Time.to_ns (Sim.Engine.now t.engine) in
  for _ = 1 to flows do
    let key = t.next_key in
    t.next_key <- key + 1;
    let p = Pattern.xorshift t.prng in
    t.prng <- p;
    let pkts = Array.unsafe_get t.sizes (p land t.smask) in
    let slot = Flow_table.insert t.table ~key ~pkts ~now:now_ns in
    if slot >= 0 then ring_push t slot
  done;
  kick_server t

let start t ~stop_at =
  t.stop_at_ns <- Sim.Time.to_ns stop_at;
  let gap = Pattern.Arrival.next_gap t.arrivals in
  ignore (Sim.Engine.schedule t.engine ~delay:(Sim.Time.ns gap) t.arrival_cb);
  kick_server t

let table t = t.table
let served_pkts t = t.served_pkts
let mice_latency t = t.mice_lat
let elephant_latency t = t.elephant_lat
let queued_pkts t = t.rtail - t.rhead

let mean_size_of spec =
  let tbl = size_table spec in
  let sum = Array.fold_left ( + ) 0 tbl in
  float_of_int sum /. float_of_int (Array.length tbl)

let mean_size_pkts t =
  let sum = Array.fold_left ( + ) 0 t.sizes in
  float_of_int sum /. float_of_int (Array.length t.sizes)

let mean_arrival_gap_ns t = Pattern.Arrival.mean_gap_ns t.arrivals
