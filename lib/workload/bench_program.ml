type stream = {
  stack : Guestos.Net_stack.t;
  tx_conns : Connection.t array;  (* windows this program keeps full *)
  mutable rr : int; (* round-robin refill pointer, for balance *)
  mutable refill_scheduled : bool;
  pacer : Pattern.Throttle.t; (* at most one refill per interval *)
}

type t = {
  engine : Sim.Engine.t;
  post_user : cost:Sim.Time.t -> (unit -> unit) -> unit;
  costs : Guestos.Os_costs.t;
  ack : Connection.t -> int -> unit;
  min_refill_interval : Sim.Time.t;
  gso_segments : int;
  mutable streams : stream list;
  by_flow : (int, Connection.t) Hashtbl.t;
  mutable consumed : int;
  mutable stray : int;
}

let create engine ?(min_refill_interval = Sim.Time.us 80) ?(gso_segments = 1)
    ~post_user ~costs ~ack () =
  if gso_segments < 1 then invalid_arg "Bench_program.create: gso_segments";
  {
    engine;
    post_user;
    costs;
    ack;
    min_refill_interval;
    gso_segments;
    streams = [];
    by_flow = Hashtbl.create 64;
    consumed = 0;
    stray = 0;
  }

(* Fill stream windows up to the stack's current capacity, round-robin
   across connections so bandwidth stays balanced. Refills are paced to at
   most one per [min_refill_interval] so acknowledgements batch the way
   they do under a real event loop under load. *)
let rec refill t s =
  if Array.length s.tx_conns > 0 && not s.refill_scheduled then begin
    let now = Sim.Engine.now t.engine in
    if not (Pattern.Throttle.ready s.pacer ~now) then begin
      s.refill_scheduled <- true;
      ignore
        (Sim.Engine.schedule t.engine
           ~delay:(Pattern.Throttle.wait s.pacer ~now)
           (fun () ->
             s.refill_scheduled <- false;
             refill t s))
    end
    else refill_now t s
  end

and refill_now t s =
  if not s.refill_scheduled then begin
    let capacity = Guestos.Net_stack.capacity s.stack in
    let want =
      Array.fold_left (fun acc c -> acc + Connection.credits c) 0 s.tx_conns
    in
    let k = min capacity want in
    if k > 0 then begin
      s.refill_scheduled <- true;
      Pattern.Throttle.mark s.pacer ~now:(Sim.Engine.now t.engine);
      let cost =
        Sim.Time.add t.costs.Guestos.Os_costs.app_wakeup
          (Sim.Time.mul_int t.costs.Guestos.Os_costs.app_per_pkt k)
      in
      t.post_user ~cost (fun () ->
          s.refill_scheduled <- false;
          let frames = ref [] in
          let remaining = ref k in
          let n = Array.length s.tx_conns in
          let idle_rounds = ref 0 in
          while !remaining > 0 && !idle_rounds < n do
            let c = s.tx_conns.(s.rr) in
            s.rr <- (s.rr + 1) mod n;
            let want = min !remaining t.gso_segments in
            let got = Connection.take_credits c want in
            if got > 0 then begin
              frames :=
                Connection.make_frame ~now:(Sim.Engine.now t.engine)
                  ~segments:got c
                :: !frames;
              remaining := !remaining - got;
              idle_rounds := 0
            end
            else incr idle_rounds
          done;
          let frames = List.rev !frames in
          if frames <> [] then Guestos.Net_stack.send s.stack frames;
          (* More credits may have arrived while we ran. *)
          refill t s)
    end
  end

let on_rx t s frames =
  let n = List.length frames in
  let cost =
    Sim.Time.add t.costs.Guestos.Os_costs.app_wakeup
      (Sim.Time.mul_int t.costs.Guestos.Os_costs.app_per_pkt n)
  in
  t.post_user ~cost (fun () ->
      let acks = Hashtbl.create 8 in
      List.iter
        (fun frame ->
          match Hashtbl.find_opt t.by_flow frame.Ethernet.Frame.flow with
          | Some conn -> (
              t.consumed <- t.consumed + frame.Ethernet.Frame.segments;
              match
                Connection.record_received ~now:(Sim.Engine.now t.engine) conn
                  frame
              with
              | `Accepted ->
                  Hashtbl.replace acks frame.Ethernet.Frame.flow
                    ((match
                        Hashtbl.find_opt acks frame.Ethernet.Frame.flow
                      with
                     | Some (_, k) -> k
                     | None -> 0)
                    + frame.Ethernet.Frame.segments
                    |> fun k -> (conn, k))
              | `Rejected -> ())
          | None -> t.stray <- t.stray + 1)
        frames;
      (* Ack flows in ascending flow-id order: the callback schedules
         events, so fan-out order must not depend on hash layout. *)
      Hashtbl.fold (fun flow v acc -> (flow, v) :: acc) acks []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> List.iter (fun (_, (conn, k)) -> t.ack conn k);
      ignore s)

let add_stream t ~stack ~tx ~rx =
  let s =
    {
      stack;
      tx_conns = Array.of_list tx;
      rr = 0;
      refill_scheduled = false;
      pacer = Pattern.Throttle.create ~interval:t.min_refill_interval;
    }
  in
  List.iter
    (fun c -> Hashtbl.replace t.by_flow (Connection.id c) c)
    (tx @ rx);
  t.streams <- t.streams @ [ s ];
  Guestos.Net_stack.set_rx_handler stack (fun frames -> on_rx t s frames);
  Guestos.Net_stack.set_writable_hook stack (fun () -> refill t s)

let start t = List.iter (fun s -> refill t s) t.streams

let on_credit t conn n =
  Connection.add_credits conn n;
  (* Find the stream owning this connection and top it up. *)
  List.iter
    (fun s ->
      if
        Array.exists
          (fun c -> Connection.id c = Connection.id conn)
          s.tx_conns
      then refill t s)
    t.streams

let consumed t = t.consumed

let[@cdna.unordered_ok "commutative int sum; iteration order cannot change it"]
    integrity_failures t =
  Hashtbl.fold
    (fun _ c acc -> acc + Connection.integrity_failures c)
    t.by_flow 0

let stray_frames t = t.stray
