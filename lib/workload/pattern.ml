(* Traffic patterns: the direction enum used across the experiment
   harness, plus the arrival-process machinery shared by the open-loop
   generator (Open_loop) and the closed-loop benchmark program
   (Bench_program's refill pacing). *)

type t = Tx | Rx | Bidirectional

let guest_transmits = function Tx | Bidirectional -> true | Rx -> false
let guest_receives = function Rx | Bidirectional -> true | Tx -> false

let to_string = function
  | Tx -> "transmit"
  | Rx -> "receive"
  | Bidirectional -> "bidirectional"

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Shared xorshift step over the native int: the steady-state sampling
   PRNG. Sim.Rng is SplitMix64 over boxed Int64 — fine for seeding and
   cold-path draws, unusable per packet — so sources seed from it once
   and then advance this unboxed generator. *)
let[@cdna.hot] xorshift s =
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = (s lxor (s lsl 17)) land max_int in
  if s = 0 then 0x9E3779B9 else s

module Throttle = struct
  type nonrec t = { interval : Sim.Time.t; mutable last : Sim.Time.t }

  let create ~interval = { interval; last = Sim.Time.zero }
  let earliest t = Sim.Time.add t.last t.interval

  let wait t ~now =
    let e = earliest t in
    if Sim.Time.compare now e < 0 then Sim.Time.diff e now else Sim.Time.zero

  let ready t ~now = Sim.Time.compare now (earliest t) >= 0
  let mark t ~now = t.last <- now
  let reset t = t.last <- Sim.Time.zero
end

module Arrival = struct
  type nonrec t =
    | Constant of { gap : Sim.Time.t }
    | Poisson of { mean_gap : Sim.Time.t }
    | On_off of { on : Sim.Time.t; off : Sim.Time.t; gap : Sim.Time.t }
    | Incast of { fan_in : int; period : Sim.Time.t }

  (* Compiled form: every process is "draw a gap from a precomputed
     table / fixed state machine" so [next_gap] is branchy int work with
     no allocation and no floats. *)
  type source = {
    gaps : int array; (* quantized inter-arrival gaps, ns *)
    gmask : int; (* index mask; 0 collapses to gaps.(0) *)
    mutable prng : int;
    burst_len : int; (* arrivals per on-period; 0 when not on/off *)
    off_gap : int;
    mutable burst_left : int;
    fan_in : int; (* 0 when not incast *)
    period : int;
    mutable fan_left : int;
  }

  let table_bits = 10
  let table_len = 1 lsl table_bits

  (* Inverse-CDF table of the exponential distribution: entry [i] is the
     gap at quantile (i + 0.5) / n. Sampling a uniform index is then an
     exponential draw quantized to ~0.1% — built once, cold, with
     floats; consumed hot with ints only. *)
  let exp_table mean_ns =
    Array.init table_len (fun i ->
        let u = (float_of_int i +. 0.5) /. float_of_int table_len in
        let g = -.float_of_int mean_ns *. log u in
        Stdlib.max 1 (int_of_float (Float.round g)))

  let source ?(seed = 1) spec =
    let prng =
      let s = xorshift (seed lxor 0x2545F491) in
      xorshift (xorshift s)
    in
    let base =
      {
        gaps = [| 0 |];
        gmask = 0;
        prng;
        burst_len = 0;
        off_gap = 0;
        burst_left = 0;
        fan_in = 0;
        period = 0;
        fan_left = 0;
      }
    in
    match spec with
    | Constant { gap } ->
        if Sim.Time.compare gap Sim.Time.zero <= 0 then
          invalid_arg "Arrival.source: gap must be positive";
        { base with gaps = [| Sim.Time.to_ns gap |] }
    | Poisson { mean_gap } ->
        if Sim.Time.compare mean_gap Sim.Time.zero <= 0 then
          invalid_arg "Arrival.source: mean_gap must be positive";
        {
          base with
          gaps = exp_table (Sim.Time.to_ns mean_gap);
          gmask = table_len - 1;
        }
    | On_off { on; off; gap } ->
        if Sim.Time.compare gap Sim.Time.zero <= 0 then
          invalid_arg "Arrival.source: on-gap must be positive";
        let burst_len =
          Stdlib.max 1 (Sim.Time.to_ns on / Sim.Time.to_ns gap)
        in
        {
          base with
          gaps = [| Sim.Time.to_ns gap |];
          burst_len;
          off_gap = Sim.Time.to_ns off;
          burst_left = burst_len;
        }
    | Incast { fan_in; period } ->
        if fan_in < 1 then invalid_arg "Arrival.source: fan_in must be >= 1";
        {
          base with
          fan_in;
          period = Sim.Time.to_ns period;
          fan_left = fan_in;
        }

  (* Next inter-arrival gap in ns. Hot: called once per admitted flow. *)
  let[@cdna.hot] next_gap s =
    if s.fan_in > 0 then begin
      (* incast: [fan_in] simultaneous arrivals every [period] *)
      if s.fan_left > 0 then begin
        s.fan_left <- s.fan_left - 1;
        0
      end
      else begin
        s.fan_left <- s.fan_in - 1;
        s.period
      end
    end
    else if s.burst_len > 0 && s.burst_left = 0 then begin
      (* on/off: burst budget exhausted -> silent gap, recharge *)
      s.burst_left <- s.burst_len;
      s.off_gap
    end
    else begin
      if s.burst_len > 0 then s.burst_left <- s.burst_left - 1;
      let p = xorshift s.prng in
      s.prng <- p;
      Array.unsafe_get s.gaps (p land s.gmask)
    end

  (* Mean gap of the compiled source in ns (exact over the table),
     including on/off duty cycling and incast batching. *)
  let mean_gap_ns s =
    let sum = Array.fold_left ( + ) 0 s.gaps in
    let tbl_mean = float_of_int sum /. float_of_int (Array.length s.gaps) in
    if s.fan_in > 0 then float_of_int s.period /. float_of_int s.fan_in
    else if s.burst_len > 0 then
      (* burst_len arrivals cost (burst_len - 1 on-gaps + one off-gap) *)
      (tbl_mean *. float_of_int (s.burst_len - 1) +. float_of_int s.off_gap)
      /. float_of_int s.burst_len
    else tbl_mean

  let describe = function
    | Constant { gap } -> Printf.sprintf "constant/%dns" (Sim.Time.to_ns gap)
    | Poisson { mean_gap } ->
        Printf.sprintf "poisson/%dns" (Sim.Time.to_ns mean_gap)
    | On_off { on; off; gap } ->
        Printf.sprintf "on-off/%d+%dus gap %dns"
          (Sim.Time.to_ns on / 1000)
          (Sim.Time.to_ns off / 1000)
          (Sim.Time.to_ns gap)
    | Incast { fan_in; period } ->
        Printf.sprintf "incast/%dx per %dus" fan_in
          (Sim.Time.to_ns period / 1000)
end
