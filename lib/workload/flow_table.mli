(** Flat, allocation-free concurrent-flow state.

    Holds up to [capacity] live flows in preallocated int/Bytes arrays
    (the [Iommu] packed-int-key playbook): flows are addressed by a
    packed int key through an open-addressing linear-probe hash kept at
    load factor <= 0.5, per-flow fields are parallel arrays indexed by a
    slot id, and deletion backward-shifts the probe cluster so chains
    never rot. The insert / complete / expire / per-packet paths are
    [\[@cdna.hot\]]: statically allocation-free ([cdna_flow] A6) and
    safe to call per packet at 10^6 concurrent flows.

    Slot ids are stable for the lifetime of a flow and are reused after
    release; functions returning a slot use [-1] for "table full /
    absent" and [-2] for "duplicate key" so the hot path never builds a
    result value. *)

type t

(** [create ~capacity] preallocates a table for at most [capacity]
    concurrent flows (hash space is the next power of two >= 2x that).
    @raise Invalid_argument if [capacity <= 0]. *)
val create : capacity:int -> t

(** [pack ~src ~dst] packs two 31-bit endpoint ids into one
    non-negative int key.
    @raise Invalid_argument if either is outside [0, 2^31). *)
val pack : src:int -> dst:int -> int

val src_of_key : int -> int
val dst_of_key : int -> int

(** [insert t ~key ~pkts ~now] admits a flow of [pkts] packets arriving
    at [now] (ns). [pkts = 0] admits an {e embryonic} flow (a SYN with
    no payload — the SYN-flood scenario) that can only be expired.
    Returns the assigned slot, [-1] if the table is full ([rejected_full]
    counted) or [-2] if [key] is already live ([rejected_dup] counted).
    The full check runs before the duplicate probe — the hot path never
    probes a full table — so at capacity a duplicate also reports [-1]. *)
val insert : t -> key:int -> pkts:int -> now:int -> int

(** [find t ~key] returns the live slot for [key], or [-1]. *)
val find : t -> key:int -> int

(** [complete t ~slot ~now] finishes the flow in [slot], releases the
    slot, and returns its completion latency [now - arrival] in ns. *)
val complete : t -> slot:int -> now:int -> int

(** [expire t ~slot] drops the flow without completing it (SYN timeout,
    churn eviction). *)
val expire : t -> slot:int -> unit

(** [dec_remaining t ~slot] consumes one packet of the flow's backlog
    and returns the packets still owed (0 = ready to complete). *)
val dec_remaining : t -> slot:int -> int

(** {2 Read-out} *)

val capacity : t -> int
val live : t -> int
val peak_live : t -> int
val inserted : t -> int
val completed : t -> int
val expired : t -> int
val rejected_full : t -> int
val rejected_dup : t -> int
val key_of_slot : t -> int -> int
val remaining : t -> slot:int -> int
val total_pkts : t -> slot:int -> int
val arrived_at : t -> slot:int -> int
val is_embryonic : t -> slot:int -> bool
val is_live_slot : t -> slot:int -> bool

(** [iter_live t f] calls [f slot] for every live slot in increasing
    slot order (deterministic; diagnostics and tests only — not hot). *)
val iter_live : t -> (int -> unit) -> unit
