(** Open-loop traffic generator over a {!Flow_table}.

    Flows arrive from a {!Pattern.Arrival} process independently of how
    the datapath keeps up (open loop), draw heavy-tailed sizes
    (elephants and mice) from a quantized inverse-CDF table, share an
    abstract bottleneck datapath round-robin (processor sharing), and
    record per-class completion latency into [Sim.Metrics] histograms.
    Supports SYN-flood (embryonic table-occupying flows with a fixed
    timeout) and flow-churn scenarios.

    The admission / service / completion paths are [\[@cdna.hot\]]:
    statically ([cdna_flow] A6) and dynamically (Gc.minor_words test)
    allocation-free, so 10^6 concurrent flows are bounded by the flat
    table footprint, not the GC. *)

(** Flow-size distribution, in packets. *)
type size_dist =
  | Pareto of { alpha : float; min_pkts : int; max_pkts : int }
      (** bounded Pareto: heavy tail, [alpha] typically 1.1–1.3 *)
  | Log_uniform of { min_pkts : int; max_pkts : int }

type config = {
  capacity : int;  (** max concurrent flows the table holds *)
  arrival : Pattern.Arrival.t;
  sizes : size_dist;
  base_service_ns : int;  (** per-packet CPU cost of the datapath *)
  wire_gap_ns : int;  (** per-packet wire time across all NICs *)
  touch_step_ns : int;
      (** flow-state touch penalty added per doubling of live flows
          above [touch_floor] (cache/TLB pressure of software paths);
          0 = per-context hardware state (CDNA) *)
  touch_floor : int;
  elephant_min_pkts : int;  (** flows at least this big are elephants *)
  syn_permille : int;  (** share of arrivals that are embryonic SYNs *)
  syn_timeout : Sim.Time.t;
  seed : int;
}

val default : config

type t

(** [create ?metrics engine cfg] preallocates the generator. With
    [?metrics] the per-class latency histograms are registered as
    [openloop.flow_latency_ns{class=mouse|elephant}]. *)
val create : ?metrics:Sim.Metrics.t -> Sim.Engine.t -> config -> t

(** [preload t ~flows] admits a standing population of [flows] flows at
    the current instant (the concurrency floor of a scale point). *)
val preload : t -> flows:int -> unit

(** [start t ~stop_at] begins the arrival process; no arrival is
    scheduled past [stop_at] (service still drains afterwards — bound
    the run with [Engine.run ~until]). *)
val start : t -> stop_at:Sim.Time.t -> unit

(** {2 Read-out} *)

val table : t -> Flow_table.t
val served_pkts : t -> int
val queued_pkts : t -> int
val mice_latency : t -> Sim.Stats.Histogram.t
val elephant_latency : t -> Sim.Stats.Histogram.t

(** Exact mean of the quantized size table, packets — for sizing
    offered load against datapath capacity. *)
val mean_size_pkts : t -> float

(** Same, computed from a distribution spec without a generator. *)
val mean_size_of : size_dist -> float

(** Long-run mean inter-arrival gap of the compiled source, ns. *)
val mean_arrival_gap_ns : t -> float
