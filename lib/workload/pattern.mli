(** Traffic patterns.

    The direction enum consumed throughout the experiment harness, plus
    the arrival-process machinery shared by the open-loop generator
    ({!Open_loop}) and the closed-loop {!Bench_program} (whose refill
    pacing is a {!Throttle}). *)

(** {1 Direction} *)

type t =
  | Tx  (** Guests transmit; the peer sinks and acknowledges. *)
  | Rx  (** The peer transmits; guests sink and acknowledge. *)
  | Bidirectional

val guest_transmits : t -> bool
val guest_receives : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Native-int xorshift step (never returns 0): the allocation-free
    steady-state sampling PRNG. Seed once from [Sim.Rng] on the cold
    path, then advance this per draw. [\[@cdna.hot\]]. *)
val xorshift : int -> int

(** {1 Rate throttle}

    "At most one X per interval" pacing, as a value: used by
    {!Bench_program} to batch window refills the way a loaded event
    loop would. *)

module Throttle : sig
  type t

  val create : interval:Sim.Time.t -> t

  (** Earliest instant the next action is allowed ([last + interval]). *)
  val earliest : t -> Sim.Time.t

  (** Delay until the next action is allowed; zero when {!ready}. *)
  val wait : t -> now:Sim.Time.t -> Sim.Time.t

  val ready : t -> now:Sim.Time.t -> bool

  (** Record that the action ran at [now]. *)
  val mark : t -> now:Sim.Time.t -> unit

  val reset : t -> unit
end

(** {1 Arrival processes}

    Flow inter-arrival processes for open-loop load. A {!Arrival.t}
    spec is compiled once (cold, floats allowed) into a {!Arrival.source}
    whose per-arrival {!Arrival.next_gap} is allocation-free integer
    work from a quantized inverse-CDF table. *)

module Arrival : sig
  type nonrec t =
    | Constant of { gap : Sim.Time.t }  (** fixed inter-arrival gap *)
    | Poisson of { mean_gap : Sim.Time.t }
        (** exponential gaps, quantized to a 1024-entry table *)
    | On_off of { on : Sim.Time.t; off : Sim.Time.t; gap : Sim.Time.t }
        (** bursts: [on/gap] arrivals spaced [gap], then silence [off] *)
    | Incast of { fan_in : int; period : Sim.Time.t }
        (** [fan_in] simultaneous arrivals every [period] *)

  type source

  (** Compile [t]; [seed] decorrelates concurrent sources.
      @raise Invalid_argument on non-positive gaps or [fan_in < 1]. *)
  val source : ?seed:int -> t -> source

  (** Next inter-arrival gap in ns (0 inside an incast fan-in).
      [\[@cdna.hot\]]: one per admitted flow, allocation-free. *)
  val next_gap : source -> int

  (** Long-run mean gap of the compiled source in ns (duty-cycle and
      fan-in aware) — for sizing offered load. *)
  val mean_gap_ns : source -> float

  val describe : t -> string
end
