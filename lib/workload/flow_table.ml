(* Flat, allocation-free flow state following the Iommu packed-int-key
   playbook: every per-flow field lives in a preallocated int array (or
   Bytes) indexed by a small slot id, flows are addressed by a packed
   int key through an open-addressing linear-probe hash (load factor
   <= 0.5), and deletions use backward-shift compaction so the probe
   chains never accumulate tombstones. Nothing on the insert / complete
   / expire path allocates, so a million concurrent flows cost a fixed
   ~80 MB of flat arrays and zero GC pressure. *)

let empty_key = -1

(* States, stored one byte per slot: '\000' free, '\001' active,
   '\002' embryonic. *)
let st_free = '\000'
let st_embryonic = '\002'

type t = {
  capacity : int;
  mask : int; (* hash size - 1; hash size = pow2 >= 2*capacity *)
  hkey : int array; (* hash index -> packed key, or [empty_key] *)
  hslot : int array; (* hash index -> flow slot *)
  skey : int array; (* slot -> packed key *)
  total_pkts : int array;
  remaining : int array;
  arrived : int array; (* slot -> admission time, ns *)
  state : Bytes.t;
  free : int array; (* free-slot stack *)
  mutable free_top : int;
  mutable live : int;
  mutable peak_live : int;
  mutable inserted : int;
  mutable completed : int;
  mutable expired : int;
  mutable rejected_full : int;
  mutable rejected_dup : int;
}

let rec ceil_pow2 n acc = if acc >= n then acc else ceil_pow2 n (acc * 2)

let create ~capacity =
  if capacity <= 0 then invalid_arg "Flow_table.create: capacity must be > 0";
  let hsize = ceil_pow2 (2 * capacity) 16 in
  let free = Array.init capacity (fun i -> capacity - 1 - i) in
  {
    capacity;
    mask = hsize - 1;
    hkey = Array.make hsize empty_key;
    hslot = Array.make hsize 0;
    skey = Array.make capacity 0;
    total_pkts = Array.make capacity 0;
    remaining = Array.make capacity 0;
    arrived = Array.make capacity 0;
    state = Bytes.make capacity st_free;
    free;
    free_top = capacity;
    live = 0;
    peak_live = 0;
    inserted = 0;
    completed = 0;
    expired = 0;
    rejected_full = 0;
    rejected_dup = 0;
  }

let max_endpoint = 1 lsl 31

let pack ~src ~dst =
  if src < 0 || src >= max_endpoint || dst < 0 || dst >= max_endpoint then
    invalid_arg "Flow_table.pack: endpoint out of range";
  (src lsl 31) lor dst

let src_of_key k = k lsr 31
let dst_of_key k = k land (max_endpoint - 1)

(* SplitMix-style finalizer over the native int; wraparound multiply is
   deterministic. The constant fits in 62 bits. *)
let[@cdna.hot] mix k =
  let h = (k lxor (k lsr 31)) * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int

let[@cdna.hot] find t ~key =
  let mask = t.mask in
  let i = ref (mix key land mask) in
  let r = ref (-3) in
  while !r = -3 do
    let k = Array.unsafe_get t.hkey !i in
    if k = key then r := Array.unsafe_get t.hslot !i
    else if k = empty_key then r := -1
    else i := (!i + 1) land mask
  done;
  !r

let[@cdna.hot] insert t ~key ~pkts ~now =
  if key < 0 || pkts < 0 then invalid_arg "Flow_table.insert";
  if t.live >= t.capacity then begin
    t.rejected_full <- t.rejected_full + 1;
    -1
  end
  else begin
    let mask = t.mask in
    let i = ref (mix key land mask) in
    let slot = ref (-3) in
    while !slot = -3 do
      let k = Array.unsafe_get t.hkey !i in
      if k = key then begin
        t.rejected_dup <- t.rejected_dup + 1;
        slot := -2
      end
      else if k = empty_key then begin
        t.free_top <- t.free_top - 1;
        let s = Array.unsafe_get t.free t.free_top in
        Array.unsafe_set t.hkey !i key;
        Array.unsafe_set t.hslot !i s;
        Array.unsafe_set t.skey s key;
        Array.unsafe_set t.total_pkts s pkts;
        Array.unsafe_set t.remaining s pkts;
        Array.unsafe_set t.arrived s now;
        Bytes.unsafe_set t.state s
          (Char.unsafe_chr (if pkts = 0 then 2 else 1));
        t.live <- t.live + 1;
        if t.live > t.peak_live then t.peak_live <- t.live;
        t.inserted <- t.inserted + 1;
        slot := s
      end
      else i := (!i + 1) land mask
    done;
    !slot
  end

(* Remove [key]'s hash entry and backward-shift the rest of its probe
   cluster: an entry at [j] may fill the hole at [i] iff its home bucket
   is not cyclically inside (i, j] (moving it would otherwise break its
   own probe chain). *)
let[@cdna.hot] unlink t key =
  let mask = t.mask in
  let i = ref (mix key land mask) in
  while Array.unsafe_get t.hkey !i <> key do
    i := (!i + 1) land mask
  done;
  let j = ref !i in
  let scanning = ref true in
  while !scanning do
    j := (!j + 1) land mask;
    let k = Array.unsafe_get t.hkey !j in
    if k = empty_key then scanning := false
    else begin
      let h = mix k land mask in
      let in_gap =
        if !i <= !j then h > !i && h <= !j else h > !i || h <= !j
      in
      if not in_gap then begin
        Array.unsafe_set t.hkey !i k;
        Array.unsafe_set t.hslot !i (Array.unsafe_get t.hslot !j);
        i := !j
      end
    end
  done;
  Array.unsafe_set t.hkey !i empty_key

let[@cdna.hot] release t slot =
  unlink t (Array.unsafe_get t.skey slot);
  Bytes.unsafe_set t.state slot '\000';
  Array.unsafe_set t.free t.free_top slot;
  t.free_top <- t.free_top + 1;
  t.live <- t.live - 1

let[@cdna.hot] complete t ~slot ~now =
  t.completed <- t.completed + 1;
  let lat = now - Array.unsafe_get t.arrived slot in
  release t slot;
  lat

let[@cdna.hot] expire t ~slot =
  t.expired <- t.expired + 1;
  release t slot

let[@cdna.hot] dec_remaining t ~slot =
  let r = Array.unsafe_get t.remaining slot - 1 in
  Array.unsafe_set t.remaining slot r;
  r

let capacity t = t.capacity
let[@cdna.hot] live t = t.live
let peak_live t = t.peak_live
let inserted t = t.inserted
let completed t = t.completed
let expired t = t.expired
let rejected_full t = t.rejected_full
let rejected_dup t = t.rejected_dup
let key_of_slot t slot = t.skey.(slot)
let[@cdna.hot] remaining t ~slot = t.remaining.(slot)
let[@cdna.hot] total_pkts t ~slot = t.total_pkts.(slot)
let[@cdna.hot] arrived_at t ~slot = t.arrived.(slot)
let is_embryonic t ~slot = Bytes.get t.state slot = st_embryonic
let is_live_slot t ~slot = Bytes.get t.state slot <> st_free

let iter_live t f =
  for slot = 0 to t.capacity - 1 do
    if Bytes.get t.state slot <> st_free then f slot
  done
