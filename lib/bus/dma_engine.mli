(** PCI DMA engine.

    Models the shared I/O fabric of the paper's testbed (dual PCI-X-class
    host bridges): DMA transfers from all devices serialize on the bus for
    their size/bandwidth occupancy plus a small arbitration slot; the
    request latency is pipelined, delaying completion but not the next
    transfer. Bytes really move between device code and
    {!Memory.Phys_mem}.

    When an {!Memory.Iommu.t} is installed, every transfer is checked
    against the initiating context's permissions, page by page — the
    hardware-protection alternative of the paper's section 5.3. Without an
    IOMMU the engine trusts physical addresses, exactly like the x86 DMA
    model the paper describes as the protection problem. *)

type t

type fault =
  [ `Bad_range  (** Address range outside physical memory. *)
  | `Iommu_denied of Memory.Addr.pfn
  | `Injected  (** Fault injected via {!set_fault_injector}. *) ]

val create :
  Sim.Engine.t ->
  mem:Memory.Phys_mem.t ->
  ?bandwidth_bps:int ->
  (* default 8.5 Gb/s (PCI-X 64/133 fabric) *)
  ?latency:Sim.Time.t ->
  (* default 600 ns pipelined request latency *)
  unit ->
  t

(** Install (or remove) an IOMMU consulted on every subsequent transfer. *)
val set_iommu : t -> Memory.Iommu.t option -> unit

(** [set_fault_injector t (Some f)] consults [f] on every transfer that
    passed range and IOMMU checks; when [f] answers true the transaction
    still occupies the bus (modelling a parity/timeout error on an
    admitted transfer) but completes with [`Injected] instead of moving
    bytes. Typically [f] forwards to [Sim.Fault_inject.fire]. *)
val set_fault_injector :
  t -> (context:int -> addr:Memory.Addr.t -> len:int -> bool) option -> unit

(** [read t ~context ~addr ~len k] DMA-reads host memory (device <- host)
    and passes the bytes to [k] at completion time. [context] identifies
    the initiating NIC context for IOMMU checks (ignored without IOMMU). *)
val read :
  t ->
  context:int ->
  addr:Memory.Addr.t ->
  len:int ->
  ((Bytes.t, fault) result -> unit) ->
  unit

(** [read_into t ~context ~addr ~len ~dst ~pos k] is the zero-copy
    variant of {!read}: at completion time the bytes are blitted into the
    caller-supplied [dst] at [pos] and [k (Ok ())] runs. The caller must
    not reuse [dst[pos, pos+len)] until [k] has fired (see DESIGN.md §8
    for the scratch-buffer ownership rules). A bad [dst] range completes
    with [`Bad_range] like a bad physical range. *)
val read_into :
  t ->
  context:int ->
  addr:Memory.Addr.t ->
  len:int ->
  dst:Bytes.t ->
  pos:int ->
  ((unit, fault) result -> unit) ->
  unit

(** [write t ~context ~addr ~data k] DMA-writes host memory (device -> host). *)
val write :
  t ->
  context:int ->
  addr:Memory.Addr.t ->
  data:Bytes.t ->
  ((unit, fault) result -> unit) ->
  unit

(** [write_from t ~context ~addr ~src ~pos ~len k] is the zero-copy
    variant of {!write}: the bytes [src[pos, pos+len)] land in host
    memory at completion time. The engine holds a view of [src] until
    then — the caller must not mutate that range before [k] fires
    (DESIGN.md §8). *)
val write_from :
  t ->
  context:int ->
  addr:Memory.Addr.t ->
  src:Bytes.t ->
  pos:int ->
  len:int ->
  ((unit, fault) result -> unit) ->
  unit

(** [access t ~context ~addr ~len k] performs a transfer with full timing,
    bus occupancy and IOMMU checking but without moving bytes. Used in
    spec-only payload mode, where frame contents are carried symbolically
    (see {!Ethernet.Frame}). *)
val access :
  t ->
  context:int ->
  addr:Memory.Addr.t ->
  len:int ->
  ((unit, fault) result -> unit) ->
  unit

(** Completed transfer count and bytes moved (diagnostics). *)
val transfers : t -> int

val bytes_moved : t -> int

(** Simulated time the bus has spent busy. *)
val busy_time : t -> Sim.Time.t

(** Transfers failed with [`Injected]. *)
val injected_faults : t -> int

(** Expose the bus counters as gauges: [dma.transfers],
    [dma.bytes_moved], [dma.busy_ns], [dma.injected_faults]. Each bus
    transaction also traces a ["dma"] slice covering its occupancy. *)
val register_metrics : t -> Sim.Metrics.t -> unit
