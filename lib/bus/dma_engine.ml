type fault = [ `Bad_range | `Iommu_denied of Memory.Addr.pfn | `Injected ]

type t = {
  engine : Sim.Engine.t;
  mem : Memory.Phys_mem.t;
  bandwidth_bps : int;
  latency : Sim.Time.t;
  mutable iommu : Memory.Iommu.t option;
  mutable injector : (context:int -> addr:Memory.Addr.t -> len:int -> bool) option;
  mutable busy_until : Sim.Time.t;
  mutable transfers : int;
  mutable bytes_moved : int;
  mutable busy_time : Sim.Time.t;
  mutable injected_faults : int;
}

let create engine ~mem ?(bandwidth_bps = 8_500_000_000) ?(latency = Sim.Time.ns 600) () =
  if bandwidth_bps <= 0 then invalid_arg "Dma_engine.create: bad bandwidth";
  {
    engine;
    mem;
    bandwidth_bps;
    latency;
    iommu = None;
    injector = None;
    busy_until = Sim.Time.zero;
    transfers = 0;
    bytes_moved = 0;
    busy_time = Sim.Time.zero;
    injected_faults = 0;
  }

let set_iommu t iommu = t.iommu <- iommu
let set_fault_injector t f = t.injector <- f

(* An injected fault models a parity/timeout error on a transaction that
   was otherwise admitted: it occupies the bus like the real transfer
   would, then completes in error. *)
let[@cdna.hot] injected t ~context ~addr ~len =
  match t.injector with
  | None -> false
  | Some f ->
      let hit =
        (f ~context ~addr ~len
        [@cdna.alloc_ok "fault injection is test-only instrumentation"])
      in
      if hit then t.injected_faults <- t.injected_faults + 1;
      hit

(* One bounds predicate for the whole bus, shared with Phys_mem so the
   admission check cannot drift from the memory's own validation. *)
let[@cdna.hot] in_range t ~addr ~len =
  Memory.Phys_mem.valid_range t.mem ~addr ~len

let[@cdna.hot] iommu_check t ~context ~addr ~len =
  match t.iommu with
  | None -> Ok ()
  | Some iommu ->
      let pages =
        (Memory.Addr.pages_spanned ~addr ~len
        [@cdna.alloc_ok
          "page list is bounded by pages-per-frame (<= 2 in practice); \
           only built when an IOMMU is installed"])
      in
      let rec check = function
        | [] -> Ok ()
        | pfn :: rest ->
            if Memory.Iommu.allowed iommu ~context pfn then check rest
            else
              (Error (`Iommu_denied pfn)
              [@cdna.alloc_ok "fault path, not steady state"])
      in
      check pages

(* Per-transaction arbitration overhead occupying the bus; the request
   latency itself is pipelined (it delays completion but not the next
   transfer). *)
let arbitration = Sim.Time.ns 40

let[@cdna.hot] submit t ~op ~context ~len action =
  let now = Sim.Engine.now t.engine in
  let start = Sim.Time.max now t.busy_until in
  let occupancy =
    Sim.Time.add arbitration
      (Sim.Time.bits_time ~bits:(len * 8) ~rate_bps:t.bandwidth_bps)
  in
  let bus_free = Sim.Time.add start occupancy in
  t.busy_until <- bus_free;
  t.busy_time <- Sim.Time.add t.busy_time occupancy;
  t.transfers <- t.transfers + 1;
  t.bytes_moved <- t.bytes_moved + len;
  if Sim.Trace.tag_enabled "dma" then
    (Sim.Trace.complete ~time:start ~dur:occupancy ~tag:"dma" ~tid:context
       ~args:[ ("len", Sim.Trace.Int len); ("context", Sim.Trace.Int context) ]
       op
    [@cdna.alloc_ok "tracing branch, disabled unless the dma tag is on"]);
  ignore (Sim.Engine.schedule_at t.engine (Sim.Time.add bus_free t.latency) action)

let read t ~context ~addr ~len k =
  if not (in_range t ~addr ~len) then k (Error `Bad_range)
  else
    match iommu_check t ~context ~addr ~len with
    | Error e -> k (Error (e :> fault))
    | Ok () ->
        if injected t ~context ~addr ~len then
          submit t ~op:"read" ~context ~len (fun () -> k (Error `Injected))
        else
          submit t ~op:"read" ~context ~len (fun () ->
              k (Ok (Memory.Phys_mem.read t.mem ~addr ~len)))

(* The completion closure handed to [submit] is the one steady-state
   allocation of a zero-copy DMA: deferred completion has to capture the
   destination somewhere. Everything else on the path is alloc-free. *)
let[@cdna.hot] read_into t ~context ~addr ~len ~dst ~pos k =
  if not (in_range t ~addr ~len) then k (Error `Bad_range)
  else if pos < 0 || len > Bytes.length dst - pos then k (Error `Bad_range)
  else
    match iommu_check t ~context ~addr ~len with
    | Error e ->
        k (Error (e :> fault) [@cdna.alloc_ok "fault path, not steady state"])
    | Ok () ->
        if injected t ~context ~addr ~len then
          submit t ~op:"read" ~context ~len
            ((fun () -> k (Error `Injected))
            [@cdna.alloc_ok "fault path, not steady state"])
        else
          submit t ~op:"read" ~context ~len
            ((fun () ->
               Memory.Phys_mem.read_into t.mem ~addr ~len dst ~pos;
               k (Ok ()))
            [@cdna.alloc_ok
              "one completion closure per transfer: the unavoidable cost \
               of deferred completion"])

let write t ~context ~addr ~data k =
  let len = Bytes.length data in
  if not (in_range t ~addr ~len) then k (Error `Bad_range)
  else
    match iommu_check t ~context ~addr ~len with
    | Error e -> k (Error (e :> fault))
    | Ok () ->
        if injected t ~context ~addr ~len then
          submit t ~op:"write" ~context ~len (fun () -> k (Error `Injected))
        else
          submit t ~op:"write" ~context ~len (fun () ->
              Memory.Phys_mem.write t.mem ~addr data;
              k (Ok ()))

let[@cdna.hot] write_from t ~context ~addr ~src ~pos ~len k =
  if not (in_range t ~addr ~len) then k (Error `Bad_range)
  else if pos < 0 || len > Bytes.length src - pos then k (Error `Bad_range)
  else
    match iommu_check t ~context ~addr ~len with
    | Error e ->
        k (Error (e :> fault) [@cdna.alloc_ok "fault path, not steady state"])
    | Ok () ->
        if injected t ~context ~addr ~len then
          submit t ~op:"write" ~context ~len
            ((fun () -> k (Error `Injected))
            [@cdna.alloc_ok "fault path, not steady state"])
        else
          submit t ~op:"write" ~context ~len
            ((fun () ->
               Memory.Phys_mem.write_sub t.mem ~addr src ~pos ~len;
               k (Ok ()))
            [@cdna.alloc_ok
              "one completion closure per transfer: the unavoidable cost \
               of deferred completion"])

let[@cdna.hot] access t ~context ~addr ~len k =
  if not (in_range t ~addr ~len) then k (Error `Bad_range)
  else
    match iommu_check t ~context ~addr ~len with
    | Error e ->
        k (Error (e :> fault) [@cdna.alloc_ok "fault path, not steady state"])
    | Ok () ->
        if injected t ~context ~addr ~len then
          submit t ~op:"access" ~context ~len
            ((fun () -> k (Error `Injected))
            [@cdna.alloc_ok "fault path, not steady state"])
        else
          submit t ~op:"access" ~context ~len
            ((fun () -> k (Ok ()))
            [@cdna.alloc_ok
              "one completion closure per transfer: the unavoidable cost \
               of deferred completion"])

let transfers t = t.transfers
let bytes_moved t = t.bytes_moved
let busy_time t = t.busy_time
let injected_faults t = t.injected_faults

let register_metrics t m =
  Sim.Metrics.gauge m "dma.transfers" (fun () -> t.transfers);
  Sim.Metrics.gauge m "dma.bytes_moved" (fun () -> t.bytes_moved);
  Sim.Metrics.gauge m "dma.busy_ns" (fun () -> Sim.Time.to_ns t.busy_time);
  Sim.Metrics.gauge m "dma.injected_faults" (fun () -> t.injected_faults)
