type work = { cost : Sim.Time.t; category : Category.t; fn : unit -> unit }

type entity = {
  id : int;
  name : string;
  weight : int;
  domain : Category.domain_id;
  queue : work Queue.t;
  mutable credits : float; (* entitled runtime, us *)
  mutable boosted : bool;
  mutable runtime : Sim.Time.t;
}

type t = {
  engine : Sim.Engine.t;
  profile : Profile.t;
  ctx_switch_cost : Sim.Time.t;
  slice : Sim.Time.t;
  credit_period : Sim.Time.t;
  irq_queue : work Queue.t;
  mutable entities : entity list; (* registration order *)
  boost_fifo : entity Queue.t;
  mutable current : entity option;
  mutable slice_used : Sim.Time.t;
  mutable busy : bool;
  mutable total_busy : Sim.Time.t;
  mutable switches : int;
  mutable next_id : int;
}

let create engine ?(ctx_switch_cost = Sim.Time.ns 2_500)
    ?(slice = Sim.Time.ms 1) ?(credit_period = Sim.Time.ms 30) ~profile () =
  let t =
    {
      engine;
      profile;
      ctx_switch_cost;
      slice;
      credit_period;
      irq_queue = Queue.create ();
      entities = [];
      boost_fifo = Queue.create ();
      current = None;
      slice_used = 0;
      busy = false;
      total_busy = 0;
      switches = 0;
      next_id = 0;
    }
  in
  (* Periodic credit replenishment, proportional to weights. *)
  let rec replenish () =
    let total_weight =
      List.fold_left (fun acc e -> acc + e.weight) 0 t.entities
    in
    if total_weight > 0 then begin
      let period_us = Sim.Time.to_us_f t.credit_period in
      List.iter
        (fun e ->
          let share =
            period_us *. float_of_int e.weight /. float_of_int total_weight
          in
          (* Bank at most one period's worth of the entity's own share, as
             in Xen's credit scheduler: an idle low-weight domain must not
             accumulate a full period and burst past its entitlement. *)
          e.credits <- Float.min share (e.credits +. share))
        t.entities
    end;
    ignore (Sim.Engine.schedule engine ~delay:t.credit_period replenish)
  in
  ignore (Sim.Engine.schedule engine ~delay:t.credit_period replenish);
  t

let add_entity t ~name ~weight ~domain =
  if weight <= 0 then invalid_arg "Cpu.add_entity: non-positive weight";
  let e =
    {
      id = t.next_id;
      name;
      weight;
      domain;
      queue = Queue.create ();
      credits = 0.;
      boosted = false;
      runtime = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  t.entities <- t.entities @ [ e ];
  e

let domain_of e = e.domain
let name_of e = e.name
let runtime_of e = e.runtime
let credits_of e = e.credits

let runnable e = not (Queue.is_empty e.queue)

(* Pop boosted entities until one is still runnable. *)
let rec pop_boosted t =
  match Queue.take_opt t.boost_fifo with
  | None -> None
  | Some e ->
      e.boosted <- false;
      if runnable e then Some e else pop_boosted t

let best_by_credits t =
  List.fold_left
    (fun best e ->
      if not (runnable e) then best
      else
        match best with
        | None -> Some e
        | Some b -> if e.credits > b.credits then Some e else best)
    None t.entities

let pick_entity t =
  (* Stickiness: keep the current entity while it has work, its slice is
     not exhausted, and no boosted entity is waiting. *)
  let boosted_waiting = not (Queue.is_empty t.boost_fifo) in
  match t.current with
  | Some e
    when runnable e
         && (not boosted_waiting)
         && Sim.Time.compare t.slice_used t.slice < 0 ->
      Some e
  | _ -> (
      match pop_boosted t with
      | Some e -> Some e
      | None -> best_by_credits t)

let rec dispatch t =
  if t.busy then ()
  else if not (Queue.is_empty t.irq_queue) then begin
    let w = Queue.pop t.irq_queue in
    execute t w ~entity:None ~switch:0
  end
  else
    match pick_entity t with
    | None -> () (* CPU idles until the next post wakes it. *)
    | Some e ->
        let switch =
          match t.current with
          | Some cur when cur == e -> 0
          | _ ->
              t.switches <- t.switches + 1;
              t.ctx_switch_cost
        in
        if
          (match t.current with Some cur -> cur != e | None -> true)
        then begin
          t.current <- Some e;
          t.slice_used <- 0
        end;
        let w = Queue.pop e.queue in
        execute t w ~entity:(Some e) ~switch

and execute t w ~entity ~switch =
  t.busy <- true;
  let start = Sim.Engine.now t.engine in
  let total = Sim.Time.add switch w.cost in
  ignore
    (Sim.Engine.schedule t.engine ~delay:total (fun () ->
         let stop = Sim.Engine.now t.engine in
         if switch > 0 then
           Profile.charge t.profile Category.Hypervisor ~start
             ~stop:(Sim.Time.add start switch);
         Profile.charge t.profile w.category
           ~start:(Sim.Time.add start switch) ~stop;
         t.total_busy <- Sim.Time.add t.total_busy total;
         (match entity with
         | Some e ->
             e.runtime <- Sim.Time.add e.runtime total;
             e.credits <- e.credits -. Sim.Time.to_us_f total;
             t.slice_used <- Sim.Time.add t.slice_used total
         | None -> ());
         if Sim.Trace.tag_enabled "sched" then begin
           let name, pid, tid =
             match entity with
             | Some e -> (e.name, e.domain + 1, e.id)
             | None -> ("irq", 0, 0)
           in
           Sim.Trace.complete ~time:start ~dur:total ~tag:"sched" ~pid ~tid
             ~args:
               [
                 ( "category",
                   Sim.Trace.Str (Format.asprintf "%a" Category.pp w.category)
                 );
                 ("switch_ns", Sim.Trace.Int (Sim.Time.to_ns switch));
               ]
             name
         end;
         t.busy <- false;
         w.fn ();
         dispatch t))

let post t e ~category ~cost fn =
  if cost < 0 then invalid_arg "Cpu.post: negative cost";
  let was_blocked = Queue.is_empty e.queue in
  Queue.push { cost; category; fn } e.queue;
  (* Boost-on-wake, like Xen's credit scheduler: a blocked entity that
     receives an event runs ahead of entities burning their timeslice. *)
  if was_blocked && (not e.boosted)
     && (match t.current with Some cur -> cur != e | None -> true)
  then begin
    e.boosted <- true;
    Queue.push e t.boost_fifo
  end;
  dispatch t

let post_irq t ~cost fn =
  if cost < 0 then invalid_arg "Cpu.post_irq: negative cost";
  Queue.push { cost; category = Category.Hypervisor; fn } t.irq_queue;
  dispatch t

let is_idle t =
  (not t.busy)
  && Queue.is_empty t.irq_queue
  && List.for_all (fun e -> Queue.is_empty e.queue) t.entities

let total_busy t = t.total_busy
let ctx_switches t = t.switches

let register_metrics t m =
  Sim.Metrics.gauge m "cpu.ctx_switches" (fun () -> t.switches);
  Sim.Metrics.gauge m "cpu.busy_ns" (fun () -> Sim.Time.to_ns t.total_busy);
  List.iter
    (fun e ->
      let labels =
        [ ("entity", e.name); ("domain", string_of_int e.domain) ]
      in
      Sim.Metrics.gauge m ~labels "cpu.entity.runtime_ns" (fun () ->
          Sim.Time.to_ns e.runtime);
      Sim.Metrics.gauge_f m ~labels "cpu.entity.credits_us" (fun () ->
          e.credits))
    t.entities
