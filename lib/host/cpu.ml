type work = { cost : Sim.Time.t; category : Category.t; fn : unit -> unit }

type entity = {
  id : int;
  name : string;
  weight : int;
  domain : Category.domain_id;
  queue : work Queue.t;
  (* Entitled runtime in integer nanoseconds. Fixed-point (not float)
     so credit arithmetic is exact: runqueue migration must not be able
     to introduce float-associativity drift between shard counts. *)
  mutable credits : int;
  mutable boosted : bool;
  mutable runtime : Sim.Time.t;
  mutable cpu : int; (* index of the runqueue the entity lives on *)
  (* One-shot extra dispatch cost after a cross-CPU migration (IPI +
     cold-cache refill), consumed by the next dispatch. *)
  mutable migrate_penalty : Sim.Time.t;
}

(* One per-CPU runqueue. With [cpus = 1] the scheduler degenerates to
   the original single-CPU behaviour, event for event. *)
type rq = {
  cpu_id : int;
  irq_queue : work Queue.t;
  mutable resident : entity list; (* arrival order on this runqueue *)
  boost_fifo : entity Queue.t;
  mutable current : entity option;
  mutable slice_used : Sim.Time.t;
  mutable busy : bool;
  mutable total_busy : Sim.Time.t;
  mutable switches : int;
}

type t = {
  engine : Sim.Engine.t;
  profile : Profile.t;
  ctx_switch_cost : Sim.Time.t;
  slice : Sim.Time.t;
  credit_period : Sim.Time.t;
  migration_cost : Sim.Time.t;
  rqs : rq array;
  mutable entities : entity list; (* registration order, all CPUs *)
  mutable next_id : int;
  mutable migrations : int;
  mutable replenish_ev : Sim.Engine.event_id option;
  mutable stopped : bool;
}

let make_rq cpu_id =
  {
    cpu_id;
    irq_queue = Queue.create ();
    resident = [];
    boost_fifo = Queue.create ();
    current = None;
    slice_used = 0;
    busy = false;
    total_busy = 0;
    switches = 0;
  }

(* Periodic credit replenishment, proportional to weights. Accounting is
   global (like Xen's credit scheduler): an entity's share does not
   depend on which runqueue it currently sits on. *)
let rec replenish t () =
  let total_weight =
    List.fold_left (fun acc e -> acc + e.weight) 0 t.entities
  in
  if total_weight > 0 then begin
    let period_ns = Sim.Time.to_ns t.credit_period in
    List.iter
      (fun e ->
        let share = period_ns * e.weight / total_weight in
        (* Bank at most one period's worth of the entity's own share, as
           in Xen's credit scheduler: an idle low-weight domain must not
           accumulate a full period and burst past its entitlement. *)
        e.credits <- Int.min share (e.credits + share))
      t.entities
  end;
  if not t.stopped then
    t.replenish_ev <-
      Some (Sim.Engine.schedule t.engine ~delay:t.credit_period (replenish t))

let create engine ?(cpus = 1) ?(ctx_switch_cost = Sim.Time.ns 2_500)
    ?(slice = Sim.Time.ms 1) ?(credit_period = Sim.Time.ms 30)
    ?(migration_cost = Sim.Time.us 9) ~profile () =
  if cpus <= 0 then invalid_arg "Cpu.create: non-positive cpus";
  let t =
    {
      engine;
      profile;
      ctx_switch_cost;
      slice;
      credit_period;
      migration_cost;
      rqs = Array.init cpus make_rq;
      entities = [];
      next_id = 0;
      migrations = 0;
      replenish_ev = None;
      stopped = false;
    }
  in
  t.replenish_ev <-
    Some (Sim.Engine.schedule engine ~delay:t.credit_period (replenish t));
  t

let stop t =
  t.stopped <- true;
  match t.replenish_ev with
  | Some ev ->
      Sim.Engine.cancel t.engine ev;
      t.replenish_ev <- None
  | None -> ()

let num_cpus t = Array.length t.rqs

let add_entity t ~name ~weight ~domain =
  if weight <= 0 then invalid_arg "Cpu.add_entity: non-positive weight";
  let ncpus = Array.length t.rqs in
  (* Round-robin initial placement: entity i starts on runqueue i mod n.
     On a single-CPU host everything lands on runqueue 0, as before. *)
  let cpu = t.next_id mod ncpus in
  let e =
    {
      id = t.next_id;
      name;
      weight;
      domain;
      queue = Queue.create ();
      credits = 0;
      boosted = false;
      runtime = 0;
      cpu;
      migrate_penalty = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  t.entities <- t.entities @ [ e ];
  let rq = t.rqs.(cpu) in
  rq.resident <- rq.resident @ [ e ];
  e

let domain_of e = e.domain
let name_of e = e.name
let runtime_of e = e.runtime
let credits_of e = float_of_int e.credits /. 1000.
let cpu_of e = e.cpu

let runnable e = not (Queue.is_empty e.queue)

(* Pop boosted entities until one is still runnable and still resident
   here (an entity can migrate away between boost and dispatch). *)
let rec pop_boosted rq =
  match Queue.take_opt rq.boost_fifo with
  | None -> None
  | Some e ->
      if e.cpu <> rq.cpu_id then pop_boosted rq
      else begin
        e.boosted <- false;
        if runnable e then Some e else pop_boosted rq
      end

let best_by_credits rq =
  List.fold_left
    (fun best e ->
      if not (runnable e) then best
      else
        match best with
        | None -> Some e
        | Some b -> if e.credits > b.credits then Some e else best)
    None rq.resident

let pick_entity t rq =
  (* Stickiness: keep the current entity while it has work, its slice is
     not exhausted, and no boosted entity is waiting. *)
  let boosted_waiting = not (Queue.is_empty rq.boost_fifo) in
  match rq.current with
  | Some e
    when runnable e
         && (not boosted_waiting)
         && Sim.Time.compare rq.slice_used t.slice < 0 ->
      Some e
  | _ -> (
      match pop_boosted rq with
      | Some e -> Some e
      | None -> best_by_credits rq)

let rec dispatch t rq =
  if rq.busy then ()
  else if not (Queue.is_empty rq.irq_queue) then begin
    let w = Queue.pop rq.irq_queue in
    execute t rq w ~entity:None ~switch:0
  end
  else
    match pick_entity t rq with
    | None -> () (* CPU idles until the next post wakes it. *)
    | Some e ->
        let switch =
          match rq.current with
          | Some cur when cur == e -> 0
          | _ ->
              rq.switches <- rq.switches + 1;
              t.ctx_switch_cost
        in
        (* A freshly migrated entity pays the IPI + cache-affinity
           penalty on top of the ordinary switch, once. *)
        let switch =
          if e.migrate_penalty > 0 then begin
            let p = e.migrate_penalty in
            e.migrate_penalty <- 0;
            Sim.Time.add switch p
          end
          else switch
        in
        if
          (match rq.current with Some cur -> cur != e | None -> true)
        then begin
          rq.current <- Some e;
          rq.slice_used <- 0
        end;
        let w = Queue.pop e.queue in
        execute t rq w ~entity:(Some e) ~switch

and execute t rq w ~entity ~switch =
  rq.busy <- true;
  let start = Sim.Engine.now t.engine in
  let total = Sim.Time.add switch w.cost in
  ignore
    (Sim.Engine.schedule t.engine ~delay:total (fun () ->
         let stop = Sim.Engine.now t.engine in
         if switch > 0 then
           Profile.charge t.profile Category.Hypervisor ~start
             ~stop:(Sim.Time.add start switch);
         Profile.charge t.profile w.category
           ~start:(Sim.Time.add start switch) ~stop;
         rq.total_busy <- Sim.Time.add rq.total_busy total;
         (match entity with
         | Some e ->
             e.runtime <- Sim.Time.add e.runtime total;
             e.credits <- e.credits - Sim.Time.to_ns total;
             rq.slice_used <- Sim.Time.add rq.slice_used total
         | None -> ());
         if Sim.Trace.tag_enabled "sched" then begin
           let name, pid, tid =
             match entity with
             | Some e -> (e.name, e.domain + 1, e.id)
             | None -> ("irq", 0, 0)
           in
           Sim.Trace.complete ~time:start ~dur:total ~tag:"sched" ~pid ~tid
             ~args:
               [
                 ( "category",
                   Sim.Trace.Str (Format.asprintf "%a" Category.pp w.category)
                 );
                 ("switch_ns", Sim.Trace.Int (Sim.Time.to_ns switch));
               ]
             name
         end;
         rq.busy <- false;
         w.fn ();
         dispatch t rq))

(* Work pending on [rq] other than entity [e]'s own queue. *)
let rq_busy_besides rq e =
  rq.busy
  || (not (Queue.is_empty rq.irq_queue))
  || List.exists (fun x -> x != e && runnable x) rq.resident

(* Deterministic wake balancing: the lowest-index completely idle
   runqueue, if any. *)
let find_idle_rq t =
  let n = Array.length t.rqs in
  let rec scan i =
    if i >= n then None
    else begin
      let rq = t.rqs.(i) in
      if
        (not rq.busy)
        && Queue.is_empty rq.irq_queue
        && not (List.exists runnable rq.resident)
      then Some rq
      else scan (i + 1)
    end
  in
  scan 0

let migrate t e ~to_rq =
  let from_rq = t.rqs.(e.cpu) in
  from_rq.resident <- List.filter (fun x -> x != e) from_rq.resident;
  (match from_rq.current with
  | Some cur when cur == e -> from_rq.current <- None
  | Some _ | None -> ());
  to_rq.resident <- to_rq.resident @ [ e ];
  e.cpu <- to_rq.cpu_id;
  e.migrate_penalty <- t.migration_cost;
  t.migrations <- t.migrations + 1

let post t e ~category ~cost fn =
  if cost < 0 then invalid_arg "Cpu.post: negative cost";
  let was_blocked = Queue.is_empty e.queue in
  Queue.push { cost; category; fn } e.queue;
  let home = t.rqs.(e.cpu) in
  (* Boost-on-wake, like Xen's credit scheduler: a blocked entity that
     receives an event runs ahead of entities burning their timeslice.
     On an SMP host the wake may also migrate the entity to an idle
     runqueue when its home CPU is occupied (wake balancing). *)
  if was_blocked && (not e.boosted)
     && (match home.current with Some cur -> cur != e | None -> true)
  then begin
    let target =
      if Array.length t.rqs > 1 && rq_busy_besides home e then
        find_idle_rq t
      else None
    in
    let rq =
      match target with
      | Some dst ->
          migrate t e ~to_rq:dst;
          dst
      | None -> home
    in
    e.boosted <- true;
    Queue.push e rq.boost_fifo;
    dispatch t rq
  end
  else dispatch t t.rqs.(e.cpu)

let post_irq t ?(cpu = 0) ~cost fn =
  if cost < 0 then invalid_arg "Cpu.post_irq: negative cost";
  if cpu < 0 || cpu >= Array.length t.rqs then
    invalid_arg "Cpu.post_irq: cpu out of range";
  let rq = t.rqs.(cpu) in
  Queue.push { cost; category = Category.Hypervisor; fn } rq.irq_queue;
  dispatch t rq

let is_idle t =
  Array.for_all
    (fun rq -> (not rq.busy) && Queue.is_empty rq.irq_queue)
    t.rqs
  && List.for_all (fun e -> Queue.is_empty e.queue) t.entities

let total_busy t =
  Array.fold_left (fun acc rq -> Sim.Time.add acc rq.total_busy) 0 t.rqs

let ctx_switches t =
  Array.fold_left (fun acc rq -> acc + rq.switches) 0 t.rqs

let migrations t = t.migrations

let register_metrics t m =
  Sim.Metrics.gauge m "cpu.ctx_switches" (fun () -> ctx_switches t);
  Sim.Metrics.gauge m "cpu.busy_ns" (fun () -> Sim.Time.to_ns (total_busy t));
  (* SMP-only series are registered only on SMP hosts so single-CPU
     metric snapshots (the golden fixtures) are unchanged. *)
  if Array.length t.rqs > 1 then begin
    Sim.Metrics.gauge m "cpu.migrations" (fun () -> t.migrations);
    Array.iter
      (fun rq ->
        let labels = [ ("cpu", string_of_int rq.cpu_id) ] in
        Sim.Metrics.gauge m ~labels "cpu.rq.busy_ns" (fun () ->
            Sim.Time.to_ns rq.total_busy);
        Sim.Metrics.gauge m ~labels "cpu.rq.ctx_switches" (fun () ->
            rq.switches))
      t.rqs
  end;
  List.iter
    (fun e ->
      let labels =
        [ ("entity", e.name); ("domain", string_of_int e.domain) ]
      in
      Sim.Metrics.gauge m ~labels "cpu.entity.runtime_ns" (fun () ->
          Sim.Time.to_ns e.runtime);
      Sim.Metrics.gauge_f m ~labels "cpu.entity.credits_us" (fun () ->
          credits_of e))
    t.entities
