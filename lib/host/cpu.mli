(** Single-CPU execution model with a Xen-like credit scheduler.

    The paper's testbed is a single Opteron shared by the hypervisor, the
    driver domain and all guests; where CPU time goes is the core of the
    evaluation. This module executes {e work items} — [(cost, category,
    continuation)] — one at a time on simulated time:

    - {b IRQ work} ({!post_irq}) models physical-interrupt handling in the
      hypervisor: it runs before any domain work (at item boundaries; items
      are microsecond-scale, matching real interrupt latency).
    - {b Domain work} ({!post}) queues on a schedulable {!entity} (a vcpu).
      Entities are multiplexed by a credit scheduler: weighted proportional
      share with boost-on-wake (a blocked entity that receives work is
      scheduled with priority once, like Xen's BOOST state), a stickiness
      slice to bound context-switch churn, and a per-switch cost charged to
      the hypervisor.

    Every executed item is charged to its {!Category.t} in the profile, so
    the experiment harness can reproduce Xenoprof's execution profiles. *)

type t
type entity

val create :
  Sim.Engine.t ->
  ?ctx_switch_cost:Sim.Time.t ->
  (* default 2.5 us: switch plus amortized cache/TLB refill *)
  ?slice:Sim.Time.t ->
  (* default 1 ms *)
  ?credit_period:Sim.Time.t ->
  (* default 30 ms *)
  profile:Profile.t ->
  unit ->
  t

(** [add_entity t ~name ~weight ~domain] registers a schedulable vcpu for
    [domain]. [weight] is the credit-scheduler weight (Xen default 256). *)
val add_entity :
  t -> name:string -> weight:int -> domain:Category.domain_id -> entity

val domain_of : entity -> Category.domain_id
val name_of : entity -> string

(** Cumulative CPU time the entity has executed. *)
val runtime_of : entity -> Sim.Time.t

(** Current credit bank in microseconds. Replenished every [credit_period]
    and capped at the entity's weighted share of one period. *)
val credits_of : entity -> float

(** [post t e ~category ~cost fn] queues a work item on entity [e]. When the
    item completes, [cost] is charged to [category] and [fn] runs. Posting
    to a blocked (empty-queue) entity wakes it with boost priority.
    @raise Invalid_argument if [cost] is negative. *)
val post :
  t -> entity -> category:Category.t -> cost:Sim.Time.t -> (unit -> unit) -> unit

(** [post_irq t ~cost fn] queues hypervisor interrupt work; it preempts all
    domain work at the next item boundary and is charged to
    [Category.Hypervisor]. *)
val post_irq : t -> cost:Sim.Time.t -> (unit -> unit) -> unit

(** True when no item is executing and all queues are empty. *)
val is_idle : t -> bool

(** Total busy time executed so far (all categories, incl. switches). *)
val total_busy : t -> Sim.Time.t

(** Number of entity-to-entity context switches performed so far. *)
val ctx_switches : t -> int

(** Expose scheduler state as pull gauges: [cpu.ctx_switches],
    [cpu.busy_ns], and per-entity [cpu.entity.runtime_ns] /
    [cpu.entity.credits_us] labelled by entity name and domain. Call after
    all entities are registered. *)
val register_metrics : t -> Sim.Metrics.t -> unit
