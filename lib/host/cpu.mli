(** SMP execution model with per-CPU Xen-like credit runqueues.

    The paper's testbed is a single Opteron shared by the hypervisor, the
    driver domain and all guests; where CPU time goes is the core of the
    evaluation. This module executes {e work items} — [(cost, category,
    continuation)] — on one or more simulated CPUs:

    - {b IRQ work} ({!post_irq}) models physical-interrupt handling in the
      hypervisor: it runs before any domain work (at item boundaries; items
      are microsecond-scale, matching real interrupt latency). Each IRQ is
      routed to one CPU (default CPU 0, matching a single-IOAPIC host).
    - {b Domain work} ({!post}) queues on a schedulable {!entity} (a vcpu).
      Entities are multiplexed by a credit scheduler: weighted proportional
      share with boost-on-wake (a blocked entity that receives work is
      scheduled with priority once, like Xen's BOOST state), a stickiness
      slice to bound context-switch churn, and a per-switch cost charged to
      the hypervisor.

    With [cpus > 1] each CPU has its own runqueue; entities are placed
    round-robin at registration and may migrate on wake: a blocked entity
    that receives work while its home CPU is occupied moves to the
    lowest-index idle CPU, paying a one-shot IPI + cache-affinity penalty
    ([migration_cost]) on its next dispatch. Credit replenishment is
    global (an entity's share is independent of its runqueue), and all
    scheduling decisions are deterministic.

    With the default [cpus = 1] the scheduler is event-for-event identical
    to the historical single-CPU model.

    Every executed item is charged to its {!Category.t} in the profile, so
    the experiment harness can reproduce Xenoprof's execution profiles. *)

type t
type entity

val create :
  Sim.Engine.t ->
  ?cpus:int ->
  (* default 1 *)
  ?ctx_switch_cost:Sim.Time.t ->
  (* default 2.5 us: switch plus amortized cache/TLB refill *)
  ?slice:Sim.Time.t ->
  (* default 1 ms *)
  ?credit_period:Sim.Time.t ->
  (* default 30 ms *)
  ?migration_cost:Sim.Time.t ->
  (* default 9 us: IPI delivery plus cold-cache refill on the new CPU *)
  profile:Profile.t ->
  unit ->
  t

(** [stop t] cancels the self-rescheduling credit-replenishment timer so a
    torn-down host stops contributing live events to the engine. Idempotent;
    work already queued still drains normally. *)
val stop : t -> unit

(** Number of simulated CPUs (runqueues). *)
val num_cpus : t -> int

(** [add_entity t ~name ~weight ~domain] registers a schedulable vcpu for
    [domain]. [weight] is the credit-scheduler weight (Xen default 256).
    Entities are placed on runqueues round-robin in registration order. *)
val add_entity :
  t -> name:string -> weight:int -> domain:Category.domain_id -> entity

val domain_of : entity -> Category.domain_id
val name_of : entity -> string

(** Cumulative CPU time the entity has executed. *)
val runtime_of : entity -> Sim.Time.t

(** Current credit bank in microseconds. Replenished every [credit_period]
    and capped at the entity's weighted share of one period. (Internally
    credits are integer nanoseconds — exact fixed-point, no float drift.) *)
val credits_of : entity -> float

(** Index of the runqueue the entity currently lives on. *)
val cpu_of : entity -> int

(** [post t e ~category ~cost fn] queues a work item on entity [e]. When the
    item completes, [cost] is charged to [category] and [fn] runs. Posting
    to a blocked (empty-queue) entity wakes it with boost priority, possibly
    migrating it to an idle CPU on an SMP host.
    @raise Invalid_argument if [cost] is negative. *)
val post :
  t -> entity -> category:Category.t -> cost:Sim.Time.t -> (unit -> unit) -> unit

(** [post_irq t ?cpu ~cost fn] queues hypervisor interrupt work on [cpu]
    (default 0); it preempts all domain work on that CPU at the next item
    boundary and is charged to [Category.Hypervisor]. *)
val post_irq : t -> ?cpu:int -> cost:Sim.Time.t -> (unit -> unit) -> unit

(** True when no item is executing and all queues on all CPUs are empty. *)
val is_idle : t -> bool

(** Total busy time executed so far, summed over CPUs (all categories,
    incl. switches). *)
val total_busy : t -> Sim.Time.t

(** Number of entity-to-entity context switches performed so far, summed
    over CPUs. *)
val ctx_switches : t -> int

(** Number of cross-CPU wake migrations performed so far. *)
val migrations : t -> int

(** Expose scheduler state as pull gauges: [cpu.ctx_switches],
    [cpu.busy_ns], and per-entity [cpu.entity.runtime_ns] /
    [cpu.entity.credits_us] labelled by entity name and domain. On SMP
    hosts ([cpus > 1]) additionally [cpu.migrations] and per-runqueue
    [cpu.rq.busy_ns] / [cpu.rq.ctx_switches] labelled by cpu index —
    gated so single-CPU metric snapshots are unchanged. Call after all
    entities are registered. *)
val register_metrics : t -> Sim.Metrics.t -> unit
