(** Execution-time profile (Xenoprof equivalent).

    Accumulates CPU busy time per {!Category.t}. The experiment harness
    resets the profile after warm-up and reads a {!report} at the end of the
    measured window, reproducing the "Domain Execution Profile" columns of
    the paper's Tables 2-4. *)

type t

val create : unit -> t

(** [add t cat dt] charges [dt] of CPU time to [cat]. *)
val add : t -> Category.t -> Sim.Time.t -> unit

(** [charge t cat ~start ~stop] charges the part of [\[start, stop\]] that
    falls after the last {!reset}, so a slice spanning the reset only
    contributes its post-reset portion (keeps the profile conserved when a
    measurement window opens mid-slice). *)
val charge : t -> Category.t -> start:Sim.Time.t -> stop:Sim.Time.t -> unit

(** Total time charged to a category so far. *)
val total : t -> Category.t -> Sim.Time.t

(** Sum over all non-idle categories. *)
val busy : t -> Sim.Time.t

(** Drop all accumulated time (used at the end of warm-up). [now] marks
    the start of the new accounting window: {!charge} intervals are
    clamped to it. *)
val reset : ?now:Sim.Time.t -> t -> unit

(** Fractions of a measurement window, in percent, in the paper's layout. *)
type report = {
  hyp : float;
  driver_kernel : float;
  driver_user : float;
  guest_kernel : float;
  guest_user : float;
  idle : float;
}

(** [report t ~window ~driver_domain] splits busy time between the driver
    domain (if any) and all other domains, and derives idle as the
    unaccounted remainder of [window].
    @raise Invalid_argument if [window] is not positive. *)
val report : t -> window:Sim.Time.t -> driver_domain:Category.domain_id option -> report

val pp_report : Format.formatter -> report -> unit
