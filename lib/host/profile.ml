type t = {
  mutable hypervisor : Sim.Time.t;
  (* Per-domain kernel/user time, keyed by domain id. *)
  kernel : (Category.domain_id, Sim.Time.t ref) Hashtbl.t;
  user : (Category.domain_id, Sim.Time.t ref) Hashtbl.t;
  mutable explicit_idle : Sim.Time.t;
  (* Time of the last reset; interval charges clamp their start here so a
     slice spanning the reset only contributes its post-reset part. *)
  mutable epoch : Sim.Time.t;
}

let create () =
  {
    hypervisor = Sim.Time.zero;
    kernel = Hashtbl.create 32;
    user = Hashtbl.create 32;
    explicit_idle = Sim.Time.zero;
    epoch = Sim.Time.zero;
  }

let cell tbl dom =
  match Hashtbl.find_opt tbl dom with
  | Some r -> r
  | None ->
      let r = ref Sim.Time.zero in
      Hashtbl.add tbl dom r;
      r

let add t cat dt =
  match (cat : Category.t) with
  | Hypervisor -> t.hypervisor <- Sim.Time.add t.hypervisor dt
  | Kernel d ->
      let r = cell t.kernel d in
      r := Sim.Time.add !r dt
  | User d ->
      let r = cell t.user d in
      r := Sim.Time.add !r dt
  | Idle -> t.explicit_idle <- Sim.Time.add t.explicit_idle dt

let total t cat =
  match (cat : Category.t) with
  | Hypervisor -> t.hypervisor
  | Kernel d -> (
      match Hashtbl.find_opt t.kernel d with Some r -> !r | None -> 0)
  | User d -> (
      match Hashtbl.find_opt t.user d with Some r -> !r | None -> 0)
  | Idle -> t.explicit_idle

let[@cdna.unordered_ok "commutative time sum; iteration order cannot change it"]
    sum_tbl tbl =
  Hashtbl.fold (fun _ r acc -> Sim.Time.add acc !r) tbl 0

let busy t = Sim.Time.add t.hypervisor (Sim.Time.add (sum_tbl t.kernel) (sum_tbl t.user))

let charge t cat ~start ~stop =
  let start = Sim.Time.max start t.epoch in
  if Sim.Time.compare stop start > 0 then add t cat (Sim.Time.sub stop start)

let reset ?(now = Sim.Time.zero) t =
  t.hypervisor <- Sim.Time.zero;
  Hashtbl.reset t.kernel;
  Hashtbl.reset t.user;
  t.explicit_idle <- Sim.Time.zero;
  t.epoch <- now

type report = {
  hyp : float;
  driver_kernel : float;
  driver_user : float;
  guest_kernel : float;
  guest_user : float;
  idle : float;
}

let report t ~window ~driver_domain =
  if window <= 0 then invalid_arg "Profile.report: non-positive window";
  let w = Sim.Time.to_sec_f window in
  let pct dt = Sim.Time.to_sec_f dt /. w *. 100. in
  let is_driver dom =
    match driver_domain with Some d -> Int.equal d dom | None -> false
  in
  let[@cdna.unordered_ok
       "two disjoint commutative sums; iteration order cannot change them"]
      split tbl =
    Hashtbl.fold
      (fun dom r (drv, guest) ->
        if is_driver dom then (Sim.Time.add drv !r, guest)
        else (drv, Sim.Time.add guest !r))
      tbl (0, 0)
  in
  let drv_k, guest_k = split t.kernel in
  let drv_u, guest_u = split t.user in
  let idle = Float.max 0. (100. -. pct (busy t)) in
  {
    hyp = pct t.hypervisor;
    driver_kernel = pct drv_k;
    driver_user = pct drv_u;
    guest_kernel = pct guest_k;
    guest_user = pct guest_u;
    idle;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "hyp=%.1f%% drv-os=%.1f%% drv-user=%.1f%% guest-os=%.1f%% guest-user=%.1f%% idle=%.1f%%"
    r.hyp r.driver_kernel r.driver_user r.guest_kernel r.guest_user r.idle
