(* Command-line driver for the CDNA reproduction: run any single
   experiment, any of the paper's tables, or the figure sweeps. *)

open Cmdliner

let quick =
  let doc = "Shorten warm-up and measurement (~4x faster, noisier)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let system =
  let doc = "System to simulate: native, xen, or cdna." in
  let parse = function
    | "native" -> Ok Experiments.Config.Native
    | "xen" -> Ok Experiments.Config.Xen_sw
    | "cdna" -> Ok Experiments.Config.Cdna_sys
    | s -> Error (`Msg ("unknown system: " ^ s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (String.lowercase_ascii (Experiments.Config.system_name s))
  in
  Arg.(
    value
    & opt (conv (parse, print)) Experiments.Config.Cdna_sys
    & info [ "s"; "system" ] ~docv:"SYSTEM" ~doc)

let nic =
  let doc = "NIC model: intel or ricenic." in
  let parse = function
    | "intel" -> Ok Experiments.Config.Intel
    | "ricenic" -> Ok Experiments.Config.Ricenic
    | s -> Error (`Msg ("unknown nic: " ^ s))
  in
  let print ppf n =
    Format.pp_print_string ppf
      (String.lowercase_ascii (Experiments.Config.nic_name n))
  in
  Arg.(
    value
    & opt (conv (parse, print)) Experiments.Config.Ricenic
    & info [ "nic" ] ~docv:"NIC" ~doc)

let pattern =
  let doc = "Traffic pattern: tx, rx, or bidir." in
  let parse = function
    | "tx" -> Ok Workload.Pattern.Tx
    | "rx" -> Ok Workload.Pattern.Rx
    | "bidir" -> Ok Workload.Pattern.Bidirectional
    | s -> Error (`Msg ("unknown pattern: " ^ s))
  in
  let print ppf p = Workload.Pattern.pp ppf p in
  Arg.(
    value
    & opt (conv (parse, print)) Workload.Pattern.Tx
    & info [ "p"; "pattern" ] ~docv:"PATTERN" ~doc)

let guests =
  Arg.(
    value & opt int 1
    & info [ "g"; "guests" ] ~docv:"N" ~doc:"Number of guest domains.")

let nics =
  Arg.(
    value & opt int 2 & info [ "nics" ] ~docv:"N" ~doc:"Number of physical NICs.")

let cpus =
  Arg.(
    value & opt int 1
    & info [ "cpus" ] ~docv:"N"
        ~doc:
          "Host CPUs, each with its own credit runqueue (1 = the paper's \
           single-CPU testbed).")

(* Comma-separated integer list, e.g. --guest-counts 8,16,32. *)
let int_list_conv =
  let parse s =
    try
      Ok
        (List.map
           (fun x -> int_of_string (String.trim x))
           (String.split_on_char ',' s))
    with Failure _ -> Error (`Msg ("not a comma-separated int list: " ^ s))
  in
  let print ppf l =
    Format.pp_print_string ppf (String.concat "," (List.map string_of_int l))
  in
  Arg.conv (parse, print)

let protection =
  let doc = "CDNA DMA protection mode: full, disabled, or iommu." in
  let parse = function
    | "full" -> Ok Cdna.Cdna_costs.Full
    | "disabled" -> Ok Cdna.Cdna_costs.Disabled
    | "iommu" -> Ok Cdna.Cdna_costs.Iommu
    | s -> Error (`Msg ("unknown protection mode: " ^ s))
  in
  let print ppf = function
    | Cdna.Cdna_costs.Full -> Format.pp_print_string ppf "full"
    | Cdna.Cdna_costs.Disabled -> Format.pp_print_string ppf "disabled"
    | Cdna.Cdna_costs.Iommu -> Format.pp_print_string ppf "iommu"
  in
  Arg.(
    value
    & opt (conv (parse, print)) Cdna.Cdna_costs.Full
    & info [ "protection" ] ~docv:"MODE" ~doc)

let materialize =
  Arg.(
    value & flag
    & info [ "materialize" ]
        ~doc:"Move and verify real payload bytes through simulated DMA.")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let hosts =
  Arg.(
    value & opt int 1
    & info [ "hosts" ] ~docv:"K"
        ~doc:
          "Simulate K independent hosts linked by a cross-host heartbeat \
           ring on the sharded engine (1 = classic single-host run). Host i \
           uses seed SEED + 7919*i; artifacts are written per host.")

let shards =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Logical shard count for multi-host runs. Purely an execution \
           policy: outputs are byte-identical for every N (and for any \
           worker-domain count). Ignored when --hosts is 1.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Stream datapath trace events (NIC tx/rx, faults, interrupt \
              decode) to stderr. Voluminous; combine with --quick.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record all trace events and write them as Chrome trace_event \
           JSON (open in about://tracing or ui.perfetto.dev).")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the end-of-run metrics registry snapshot as JSON.")

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  output_char oc '\n';
  close_out oc

(* Install a recorder sink (takes precedence over --trace's stderr sink). *)
let setup_recorder () =
  let r = Sim.Trace.Recorder.create () in
  Sim.Trace.set_sink (Some (Sim.Trace.Recorder.sink r));
  r

let name_processes recorder xen =
  Sim.Trace.Recorder.set_process_name recorder ~pid:0 "hypervisor";
  List.iter
    (fun d ->
      Sim.Trace.Recorder.set_process_name recorder
        ~pid:(Xen.Domain.id d + 1)
        (Xen.Domain.name d))
    (Xen.Hypervisor.domains xen)

let emit_artifacts ~recorder ~trace_out ~metrics_out tb =
  (match recorder, trace_out with
  | Some r, Some path ->
      name_processes r tb.Experiments.Testbed.xen;
      write_file path (Sim.Trace.Recorder.to_chrome_string r);
      Format.printf "trace: %s (%d events%s)@." path
        (Sim.Trace.Recorder.count r)
        (let d = Sim.Trace.Recorder.dropped r in
         if d > 0 then Printf.sprintf ", %d dropped" d else "")
  | _ -> ());
  match metrics_out with
  | Some path ->
      write_file path
        (Sim.Json.to_string
           (Sim.Metrics.to_json tb.Experiments.Testbed.metrics));
      Format.printf "metrics: %s (%d series)@." path
        (Sim.Metrics.size tb.Experiments.Testbed.metrics)
  | None -> ()

(* [host_path p i] derives host [i]'s artifact path from [p]:
   "m.json" -> "m.host0.json". *)
let host_path path i =
  match Filename.extension path with
  | "" -> Printf.sprintf "%s.host%d" path i
  | ext -> Printf.sprintf "%s.host%d%s" (Filename.remove_extension path) i ext

(* Multi-host runs emit one artifact set per host, in fixed host order;
   tracing uses per-LP sinks so each host's stream stays separate even
   when shards drain on different OS domains. *)
let run_multihost ~quick ~shards ~hosts ~trace_out ~metrics_out cfg =
  let module M = Experiments.Multihost in
  let recorders =
    match trace_out with
    | None -> [||]
    | Some _ -> Array.init hosts (fun _ -> Sim.Trace.Recorder.create ())
  in
  let prepare (t : M.t) =
    if Array.length recorders > 0 then
      Array.iter
        (fun (h : M.host) ->
          Sim.Shard.Partition.set_sink h.M.lp
            (Some (Sim.Trace.Recorder.sink recorders.(h.M.id))))
        t.M.hosts
  in
  let rep, t = M.run ~quick ~shards ~prepare ~hosts cfg in
  Format.printf "%a" M.pp_report rep;
  (match trace_out with
  | Some path ->
      Array.iteri
        (fun i (h : M.host) ->
          let r = recorders.(i) in
          name_processes r h.M.tb.Experiments.Testbed.xen;
          let p = host_path path i in
          write_file p (Sim.Trace.Recorder.to_chrome_string r);
          Format.printf "trace: %s (%d events)@." p
            (Sim.Trace.Recorder.count r))
        t.M.hosts
  | None -> ());
  match metrics_out with
  | Some path ->
      Array.iteri
        (fun i (h : M.host) ->
          let p = host_path path i in
          write_file p
            (Sim.Json.to_string
               (Sim.Metrics.to_json h.M.tb.Experiments.Testbed.metrics));
          Format.printf "metrics: %s (%d series)@." p
            (Sim.Metrics.size h.M.tb.Experiments.Testbed.metrics))
        t.M.hosts
  | None -> ()

(* ---- run one experiment ---- *)

let build_cfg system nic pattern guests nics cpus protection materialize seed =
  {
    Experiments.Config.default with
    Experiments.Config.system;
    nic;
    pattern;
    guests;
    nics;
    cpus;
    protection;
    materialize;
    seed;
  }

let print_measurement m =
  Format.printf "%a@." Experiments.Run.pp m;
  Format.printf
    "drops=%d faults=%d integrity_failures=%d fairness=%.3f sim_events=%d@."
    m.Experiments.Run.rx_drops m.Experiments.Run.faults
    m.Experiments.Run.integrity_failures m.Experiments.Run.fairness
    m.Experiments.Run.events_fired

let run_cmd =
  let run quick system nic pattern guests nics cpus protection materialize seed
      trace trace_out metrics_out shards hosts =
    let cfg =
      build_cfg system nic pattern guests nics cpus protection materialize seed
    in
    if hosts > 1 then
      run_multihost ~quick ~shards ~hosts ~trace_out ~metrics_out cfg
    else begin
      if trace then
        Sim.Trace.set_sink
          (Some (Sim.Trace.formatter_sink Format.err_formatter));
      let recorder =
        match trace_out with Some _ -> Some (setup_recorder ()) | None -> None
      in
      let m, tb = Experiments.Run.run_tb ~quick cfg in
      Sim.Trace.set_sink None;
      print_measurement m;
      emit_artifacts ~recorder ~trace_out ~metrics_out tb
    end
  in
  let doc = "Run a single experiment and print its measurement." in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const run $ quick $ system $ nic $ pattern $ guests $ nics $ cpus
      $ protection $ materialize $ seed $ trace $ trace_out $ metrics_out
      $ shards $ hosts)

(* ---- trace: run an experiment purely to produce observability output ---- *)

let trace_cmd =
  let run quick system nic pattern guests nics cpus protection materialize seed
      trace_out metrics_out =
    let recorder = Some (setup_recorder ()) in
    let cfg =
      build_cfg system nic pattern guests nics cpus protection materialize seed
    in
    let m, tb = Experiments.Run.run_tb ~quick cfg in
    Sim.Trace.set_sink None;
    print_measurement m;
    emit_artifacts ~recorder ~trace_out:(Some trace_out)
      ~metrics_out:(Some metrics_out) tb
  in
  let trace_out_pos =
    Arg.(
      value
      & opt string "cdna-trace.json"
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Output path for the Chrome trace_event JSON.")
  in
  let metrics_out_pos =
    Arg.(
      value
      & opt string "cdna-metrics.json"
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Output path for the metrics snapshot JSON.")
  in
  let doc =
    "Run a single experiment with full tracing enabled and write a Chrome \
     trace_event JSON (load in about://tracing or ui.perfetto.dev) plus a \
     metrics snapshot JSON."
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(
      const run $ quick $ system $ nic $ pattern $ guests $ nics $ cpus
      $ protection $ materialize $ seed $ trace_out_pos $ metrics_out_pos)

(* ---- tables ---- *)

let table_cmd =
  let run quick which csv =
    match (which, csv) with
    | 1, false ->
        Experiments.Tables.print_table1 (Experiments.Tables.table1 ~quick ())
    | 1, true ->
        print_string
          (Experiments.Tables.csv_table1 (Experiments.Tables.table1 ~quick ()))
    | 2, false ->
        Experiments.Tables.print_table23
          ~title:"Table 2: transmit, single guest, 2 NICs"
          (Experiments.Tables.table2 ~quick ())
    | 2, true ->
        print_string
          (Experiments.Tables.csv_table23 (Experiments.Tables.table2 ~quick ()))
    | 3, false ->
        Experiments.Tables.print_table23
          ~title:"Table 3: receive, single guest, 2 NICs"
          (Experiments.Tables.table3 ~quick ())
    | 3, true ->
        print_string
          (Experiments.Tables.csv_table23 (Experiments.Tables.table3 ~quick ()))
    | 4, false ->
        Experiments.Tables.print_table4 (Experiments.Tables.table4 ~quick ())
    | 4, true ->
        print_string
          (Experiments.Tables.csv_table23 (Experiments.Tables.table4 ~quick ()))
    | 0, false -> Experiments.Tables.print_all ~quick ()
    | 0, true -> Printf.eprintf "--csv needs a specific table number\n"
    | n, _ -> Printf.eprintf "no such table: %d (use 1-4, or 0 for all)\n" n
  in
  let which =
    Arg.(
      value & pos 0 int 0
      & info [] ~docv:"N" ~doc:"Table number 1-4 (0 or omitted = all).")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV rows.") in
  let doc = "Reproduce one of the paper's tables (or all)." in
  Cmd.v (Cmd.info "table" ~doc) Term.(const run $ quick $ which $ csv)

(* ---- figures ---- *)

let figure_cmd =
  let run quick which csv =
    let print_or_csv ~title ~pattern points =
      if csv then print_string (Experiments.Figures.csv points)
      else Experiments.Figures.print_figure ~title ~pattern points
    in
    match which with
    | 3 ->
        print_or_csv ~title:"Figure 3: transmit scaling"
          ~pattern:Workload.Pattern.Tx
          (Experiments.Figures.figure3 ~quick ())
    | 4 ->
        print_or_csv ~title:"Figure 4: receive scaling"
          ~pattern:Workload.Pattern.Rx
          (Experiments.Figures.figure4 ~quick ())
    | n -> Printf.eprintf "no such figure: %d (use 3 or 4)\n" n
  in
  let which =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc:"Figure 3 or 4.")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV series.") in
  let doc = "Reproduce one of the paper's scaling figures." in
  Cmd.v (Cmd.info "figure" ~doc) Term.(const run $ quick $ which $ csv)

(* ---- scale-guests: oversubscription sweep beyond the paper ---- *)

let scale_guests_cmd =
  let run quick pattern preset guest_counts cpu_counts shards csv chart_cpus =
    let pattern, slice =
      match preset with
      | Some `Rx_heavy ->
          (Workload.Pattern.Rx, Some Experiments.Scaling.rx_heavy_slice)
      | None -> (pattern, None)
    in
    let points =
      Experiments.Scaling.sweep ~quick ~shards ~pattern ?slice ~guest_counts
        ~cpu_counts ()
    in
    if csv then print_string (Experiments.Scaling.csv points)
    else begin
      print_endline
        "Guest scaling past the 32 hardware contexts (CDNA pages contexts; \
         Xen bridges in software):";
      print_newline ();
      Experiments.Scaling.print_table points;
      match chart_cpus with
      | Some c ->
          print_newline ();
          print_string (Experiments.Scaling.chart points ~cpus:c)
      | None -> ()
    end
  in
  let guest_counts =
    Arg.(
      value
      & opt int_list_conv Experiments.Scaling.default_guest_counts
      & info [ "guest-counts" ] ~docv:"N,N,..."
          ~doc:"Guest counts to sweep (default 8..256).")
  in
  let cpu_counts =
    Arg.(
      value
      & opt int_list_conv Experiments.Scaling.default_cpu_counts
      & info [ "cpu-counts" ] ~docv:"N,N,..."
          ~doc:"Host CPU counts to sweep (default 1,2,4).")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV rows.") in
  let chart_cpus =
    Arg.(
      value
      & opt (some int) None
      & info [ "chart" ] ~docv:"CPUS"
          ~doc:"Also draw the ASCII chart for this CPU count's series.")
  in
  let preset =
    let parse = function
      | "rx-heavy" -> Ok (Some `Rx_heavy)
      | s -> Error (`Msg ("unknown preset: " ^ s))
    in
    let print ppf = function
      | Some `Rx_heavy -> Format.pp_print_string ppf "rx-heavy"
      | None -> ()
    in
    Arg.(
      value
      & opt (conv (parse, print)) None
      & info [ "preset" ] ~docv:"PRESET"
          ~doc:
            "Workload preset. 'rx-heavy': receive-dominated traffic with a \
             100 us scheduler slice (vs 1 ms default) — maximum context-swap \
             pressure, probing for a CDNA/Xen crossover.")
  in
  let doc =
    "Sweep guest counts through and past the NIC's 32 hardware contexts \
     (hypervisor context paging), CDNA vs Xen software I/O, on 1..N host \
     CPUs; reports throughput, context-swap counts and the crossover where \
     swap overhead eats CDNA's advantage. Results are byte-identical for \
     every --shards value."
  in
  Cmd.v
    (Cmd.info "scale-guests" ~doc)
    Term.(
      const run $ quick $ pattern $ preset $ guest_counts $ cpu_counts $ shards
      $ csv $ chart_cpus)

(* ---- scale: open-loop million-flow sweep ---- *)

let scale_cmd =
  let run quick scenario seed flow_counts shards csv chart =
    let points =
      Experiments.Flows.sweep ~quick ~shards ~scenario ~seed ~flow_counts ()
    in
    if csv then print_string (Experiments.Flows.csv points)
    else begin
      print_endline
        "Open-loop flow scaling (standing population + ~1.05x CDNA-capacity \
         churn; identical offered load for both systems):";
      print_newline ();
      Experiments.Flows.print_table points;
      if chart then begin
        print_newline ();
        print_string (Experiments.Flows.chart points)
      end
    end
  in
  let scenario =
    let parse s =
      match Experiments.Flows.scenario_of_string s with
      | Some sc -> Ok sc
      | None -> Error (`Msg ("unknown scenario: " ^ s))
    in
    let print ppf sc =
      Format.pp_print_string ppf (Experiments.Flows.scenario_to_string sc)
    in
    Arg.(
      value
      & opt (conv (parse, print)) Experiments.Flows.Normal
      & info [ "scenario" ] ~docv:"SCENARIO"
          ~doc:
            "Traffic scenario: normal (Poisson + bounded-Pareto sizes), \
             syn-flood (half embryonic SYNs at 8x rate), churn (tiny flows \
             in on/off bursts), or incast (64-way fan-in).")
  in
  let flow_counts =
    Arg.(
      value
      & opt int_list_conv Experiments.Flows.default_flow_counts
      & info [ "flow-counts" ] ~docv:"N,N,..."
          ~doc:"Standing concurrent-flow counts to sweep (default 10^3..10^6).")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV rows.") in
  let chart =
    Arg.(
      value & flag
      & info [ "chart" ] ~doc:"Also draw the throughput ASCII chart.")
  in
  let doc =
    "Open-loop flow scaling 10^3..10^6 concurrent flows, Xen software vs \
     CDNA: heavy-tailed sizes, Poisson/bursty arrivals, SYN-flood and churn \
     scenarios; reports throughput and p50/p99/p999 per-flow tail latency. \
     Flow state is flat preallocated arrays (zero steady-state allocation); \
     results are byte-identical for every --shards value."
  in
  Cmd.v (Cmd.info "scale" ~doc)
    Term.(
      const run $ quick $ scenario $ seed $ flow_counts $ shards $ csv $ chart)

(* ---- verify ---- *)

let verify_cmd =
  let run quick =
    print_endline "Checking the paper's headline claims against the simulation:";
    print_newline ();
    let ok = Experiments.Claims.print (Experiments.Claims.verify ~quick ()) in
    exit (if ok then 0 else 1)
  in
  let doc = "Self-check: verify the paper's headline claims hold (exit 1 if not)." in
  Cmd.v (Cmd.info "verify" ~doc) Term.(const run $ quick)

(* ---- extensions ---- *)

let extension_cmd =
  let run quick = Experiments.Extension.print_all ~quick () in
  let doc = "Run the beyond-the-paper extension experiments (latency, bidirectional)." in
  Cmd.v (Cmd.info "extension" ~doc) Term.(const run $ quick)

(* ---- protection coverage ---- *)

let protection_cmd =
  let run quick seed trace =
    if trace then
      Sim.Trace.set_sink (Some (Sim.Trace.formatter_sink Format.err_formatter));
    Experiments.Protection_coverage.print
      (Experiments.Protection_coverage.sweep ~quick ~seed ())
  in
  let doc =
    "Fault-injection sweep: malicious-driver attacks and injected bus/link \
     faults against every protection mode, reporting detection, leakage and \
     containment."
  in
  Cmd.v (Cmd.info "protection" ~doc) Term.(const run $ quick $ seed $ trace)

let main =
  let doc =
    "Reproduction of 'Concurrent Direct Network Access for Virtual Machine \
     Monitors' (HPCA 2007)"
  in
  Cmd.group (Cmd.info "cdna_sim" ~doc)
    [
      run_cmd;
      trace_cmd;
      table_cmd;
      figure_cmd;
      scale_guests_cmd;
      scale_cmd;
      extension_cmd;
      protection_cmd;
      verify_cmd;
    ]

let () = exit (Cmd.eval main)
